//! The staged streaming decode pipeline.
//!
//! ```text
//! producer ──▶ SampleRing ──▶ framer ──▶ Bounded<FrameTask> ──▶ workers ──▶ Bounded<ServiceEvent> ──▶ recv()
//!              (lossy)        (scan)     (backpressure)          (decode)    (backpressure)            (reorder)
//! ```
//!
//! One framer thread scans the sample stream for preambles with exactly the
//! production [`Receiver`] detector and cuts per-frame windows; a pool of
//! persistent workers decodes those windows (training → DFE → demap → MAC
//! recover) and emits one [`ServiceEvent`] per detected frame. Every queue
//! between stages is bounded, so a slow consumer propagates backpressure
//! upstream until the lossy ring starts overwriting: late samples come back
//! as zeroed placeholders flagged unreliable, the receiver's quarter-slot
//! rule turns them into symbol erasures, and the PR 3 errors-and-erasures
//! RS path absorbs short outages before any frame is dropped.
//!
//! Determinism: the framer scans in fixed [`SCAN_BLOCK`]-sized offset
//! blocks and only scans a block once the assembly buffer provably covers
//! every sample a hit in that block could need. The number and arguments of
//! detector calls are therefore a pure function of the sample stream — not
//! of producer chunking or worker timing — which keeps the telemetry
//! fingerprint invariant across worker counts.

use crate::queue::Bounded;
use crate::ring::SampleRing;
use retroturbo_core::{PhyConfig, Receiver};
use retroturbo_dsp::{Signal, C64};
use retroturbo_lcm::LcParams;
use retroturbo_mac::{recover_with_quality, CodingChoice};
use retroturbo_telemetry as telemetry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Offsets scanned per detector call in the framer (see module docs).
const SCAN_BLOCK: usize = 512;

/// Configuration for [`DecodeService::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// PHY parameters shared by transmitter and receiver.
    pub phy: PhyConfig,
    /// Nominal liquid-crystal parameters for the receiver model.
    pub lc: LcParams,
    /// Retained offline-training bases S for the receiver.
    pub s: usize,
    /// Protected frame length in bits (what the transmitter modulates).
    pub n_bits: usize,
    /// Payload bytes recovered per frame.
    pub payload_len: usize,
    /// Outer Reed–Solomon code, if any.
    pub coding: Option<CodingChoice>,
    /// Scrambler seed shared with the transmitter.
    pub scramble_seed: u8,
    /// Decode worker threads (≥ 1).
    pub workers: usize,
    /// Sample ring capacity; when full, oldest unread samples degrade to
    /// erasure placeholders.
    pub ring_capacity: usize,
    /// Framer → worker queue bound (frames).
    pub frame_queue: usize,
    /// Worker → consumer queue bound (events).
    pub out_queue: usize,
    /// Frames a worker dequeues per lock acquisition.
    pub batch: usize,
    /// Detected frames whose window lost more than this fraction of its
    /// samples to ring overruns are dropped instead of decoded.
    pub max_lost_fraction: f64,
}

impl ServiceConfig {
    /// A config for one link: frame length is derived from the MAC framing
    /// (`protect` of a `payload_len`-byte payload), queue bounds get
    /// moderate defaults, one worker.
    pub fn new(
        phy: PhyConfig,
        payload_len: usize,
        coding: Option<CodingChoice>,
        scramble_seed: u8,
    ) -> Self {
        let n_bits = retroturbo_mac::protect(&vec![0u8; payload_len], coding, scramble_seed).len();
        Self {
            phy,
            lc: LcParams::default(),
            s: 1,
            n_bits,
            payload_len,
            coding,
            scramble_seed,
            workers: 1,
            ring_capacity: 1 << 16,
            frame_queue: 8,
            out_queue: 16,
            batch: 4,
            max_lost_fraction: 0.5,
        }
    }
}

/// Why a detected frame produced no payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Ring overruns destroyed more of the frame window than
    /// [`ServiceConfig::max_lost_fraction`] allows; the framer dropped it
    /// without spending decode work.
    Overrun,
    /// The PHY could not demodulate the window (truncated tail frame, or a
    /// fit failure at the detected offset).
    Demod,
    /// Demodulation produced bits but the MAC could not recover the
    /// payload (CRC/RS failure beyond the erasure budget).
    Recover,
}

/// A successfully recovered frame.
#[derive(Debug, Clone)]
pub struct ServiceFrame {
    /// Detection-order sequence number (0-based).
    pub seq: u64,
    /// Absolute sample offset of the frame start in the input stream.
    pub offset: u64,
    /// Recovered payload bytes.
    pub payload: Vec<u8>,
    /// Raw demodulated frame bits (before MAC recovery).
    pub bits: Vec<bool>,
    /// Reed–Solomon symbol errors corrected during recovery.
    pub symbols_corrected: usize,
    /// Erased symbols the RS decoder actually restored.
    pub erasures_filled: usize,
    /// Codeword symbols the PHY flagged as unreliable.
    pub erasures_flagged: usize,
    /// True when ring overruns overlapped this frame's window: the decode
    /// went through the degraded erasure path rather than clean samples.
    pub degraded: bool,
    /// Wall time from preamble detection to recovered payload.
    pub latency: Duration,
}

/// One pipeline outcome per detected frame, in detection order via
/// [`DecodeService::recv`].
#[derive(Debug, Clone)]
pub enum ServiceEvent {
    /// The frame decoded and the MAC recovered its payload.
    Frame(ServiceFrame),
    /// The frame was detected but produced no payload.
    Dropped {
        /// Detection-order sequence number.
        seq: u64,
        /// Absolute sample offset of the detected preamble.
        offset: u64,
        /// What killed it.
        reason: DropReason,
    },
}

impl ServiceEvent {
    /// The detection-order sequence number of this event.
    pub fn seq(&self) -> u64 {
        match self {
            ServiceEvent::Frame(f) => f.seq,
            ServiceEvent::Dropped { seq, .. } => *seq,
        }
    }
}

/// Occupancy histogram for a bounded queue: `counts[d]` is how many pushes
/// left the queue at depth `d` (1 ≤ d ≤ capacity).
#[derive(Debug, Clone, Default)]
pub struct QueueDepth {
    /// Push counts indexed by post-push depth; `counts[0]` is unused.
    pub counts: Vec<u64>,
}

impl QueueDepth {
    fn new(cap: usize) -> Self {
        Self {
            counts: vec![0; cap + 1],
        }
    }

    fn record(&mut self, depth: usize) {
        if depth < self.counts.len() {
            self.counts[depth] += 1;
        }
    }

    /// Mean post-push depth (0 when nothing was pushed).
    pub fn mean(&self) -> f64 {
        let (mut n, mut sum) = (0u64, 0u64);
        for (d, &c) in self.counts.iter().enumerate() {
            n += c;
            sum += c * d as u64;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// Aggregate pipeline accounting, returned by [`DecodeService::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Samples the producer pushed into the ring.
    pub samples_pushed: u64,
    /// Samples overwritten before the framer consumed them.
    pub samples_lost: u64,
    /// Preamble hits (frames entering the pipeline).
    pub frames_detected: u64,
    /// Frames whose payload was recovered.
    pub frames_decoded: u64,
    /// Recovered frames that overlapped ring loss (erasure-degraded path).
    pub frames_degraded: u64,
    /// Detected frames that produced no payload.
    pub frames_dropped: u64,
    /// Drops charged to ring overruns.
    pub dropped_overrun: u64,
    /// Drops charged to PHY demodulation failure.
    pub dropped_demod: u64,
    /// Drops charged to MAC recovery failure.
    pub dropped_recover: u64,
    /// Events still in flight when `shutdown` discarded them.
    pub discarded_at_shutdown: u64,
    /// Framer → worker queue occupancy histogram.
    pub frame_queue_depth: QueueDepth,
    /// Worker → consumer queue occupancy histogram.
    pub out_queue_depth: QueueDepth,
}

/// Mutable counters shared by the stage threads.
#[derive(Debug, Default)]
struct SharedStats {
    frames_detected: u64,
    frames_decoded: u64,
    frames_degraded: u64,
    dropped_overrun: u64,
    dropped_demod: u64,
    dropped_recover: u64,
    frame_queue_depth: QueueDepth,
    out_queue_depth: QueueDepth,
}

/// A cut frame window travelling from the framer to a worker.
struct FrameTask {
    seq: u64,
    /// Absolute offset of the detected preamble in the input stream.
    abs_offset: u64,
    /// Preamble offset relative to `samples[0]`.
    rel_off: usize,
    samples: Vec<C64>,
    /// Per-sample unreliability (front-end flags ∪ ring-loss placeholders).
    mask: Vec<bool>,
    degraded: bool,
    detected_at: Instant,
}

/// Producer handle for feeding samples into a running service; cheap to
/// clone, safe to use from any thread.
#[derive(Clone)]
pub struct ServiceInput {
    ring: Arc<SampleRing>,
}

impl ServiceInput {
    /// Push samples (never blocks). `unreliable`, when given, carries
    /// per-sample front-end confidence flags. Returns how many queued
    /// samples this push overwrote.
    pub fn push(&self, samples: &[C64], unreliable: Option<&[bool]>) -> u64 {
        let lost = self.ring.push(samples, unreliable);
        telemetry::counter_add("service.samples.in", samples.len() as u64);
        if lost > 0 {
            telemetry::counter_add("service.samples.lost", lost);
        }
        lost
    }

    /// Signal end of input: the pipeline drains and winds down.
    pub fn close(&self) {
        self.ring.close();
    }
}

/// A running streaming decode service. See the module docs for the stage
/// graph; [`DecodeService::recv`] yields events in detection order.
pub struct DecodeService {
    cfg: ServiceConfig,
    ring: Arc<SampleRing>,
    out: Arc<Bounded<ServiceEvent>>,
    reorder: Mutex<Reorder>,
    stats: Arc<Mutex<SharedStats>>,
    framer: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

#[derive(Default)]
struct Reorder {
    next: u64,
    held: BTreeMap<u64, ServiceEvent>,
}

impl DecodeService {
    /// Start the pipeline: one framer thread plus `cfg.workers` decode
    /// workers, all persistent until [`Self::shutdown`].
    pub fn spawn(cfg: ServiceConfig) -> Self {
        assert!(cfg.workers >= 1, "DecodeService: need at least one worker");
        assert!(cfg.n_bits > 0, "DecodeService: n_bits must be positive");
        let ring = Arc::new(SampleRing::new(cfg.ring_capacity));
        let frame_q = Arc::new(Bounded::<FrameTask>::new(cfg.frame_queue));
        let out = Arc::new(Bounded::<ServiceEvent>::new(cfg.out_queue));
        let stats = Arc::new(Mutex::new(SharedStats {
            frame_queue_depth: QueueDepth::new(cfg.frame_queue),
            out_queue_depth: QueueDepth::new(cfg.out_queue),
            ..SharedStats::default()
        }));

        let framer = {
            let (cfg, ring, frame_q, out, stats) = (
                cfg.clone(),
                Arc::clone(&ring),
                Arc::clone(&frame_q),
                Arc::clone(&out),
                Arc::clone(&stats),
            );
            std::thread::Builder::new()
                .name("rt-framer".into())
                .spawn(move || run_framer(&cfg, &ring, &frame_q, &out, &stats))
                .expect("spawn framer")
        };

        let live_workers = Arc::new(AtomicUsize::new(cfg.workers));
        let workers = (0..cfg.workers)
            .map(|i| {
                let (cfg, frame_q, out, stats, live) = (
                    cfg.clone(),
                    Arc::clone(&frame_q),
                    Arc::clone(&out),
                    Arc::clone(&stats),
                    Arc::clone(&live_workers),
                );
                std::thread::Builder::new()
                    .name(format!("rt-worker-{i}"))
                    .spawn(move || {
                        run_worker(&cfg, &frame_q, &out, &stats);
                        // Last worker out closes the event queue so the
                        // consumer sees exhaustion.
                        if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                            out.close();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        Self {
            cfg,
            ring,
            out,
            reorder: Mutex::new(Reorder::default()),
            stats,
            framer: Some(framer),
            workers,
        }
    }

    /// A producer handle for this service's sample ring.
    pub fn input(&self) -> ServiceInput {
        ServiceInput {
            ring: Arc::clone(&self.ring),
        }
    }

    /// Next pipeline event in detection order; blocks while the pipeline is
    /// live, `None` once the input is closed and every event delivered.
    pub fn recv(&self) -> Option<ServiceEvent> {
        let mut r = self.reorder.lock().unwrap();
        loop {
            let next = r.next;
            if let Some(ev) = r.held.remove(&next) {
                r.next += 1;
                return Some(ev);
            }
            match self.out.pop() {
                Some(ev) => {
                    r.held.insert(ev.seq(), ev);
                }
                None => {
                    // Closed and drained: flush any stragglers in order.
                    return match r.held.pop_first() {
                        Some((seq, ev)) => {
                            r.next = seq + 1;
                            Some(ev)
                        }
                        None => None,
                    };
                }
            }
        }
    }

    /// Close the input, drain whatever is still in flight (counted as
    /// discarded), join every stage thread, and return the final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.ring.close();
        let mut discarded = 0u64;
        {
            let mut r = self.reorder.lock().unwrap();
            discarded += r.held.len() as u64;
            r.held.clear();
        }
        // Keep the out queue moving so blocked workers can finish; `pop`
        // returns `None` once the last worker closes it.
        while self.out.pop().is_some() {
            discarded += 1;
        }
        if let Some(h) = self.framer.take() {
            h.join().expect("framer panicked");
        }
        for h in self.workers.drain(..) {
            h.join().expect("worker panicked");
        }
        let ring = self.ring.stats();
        let s = self.stats.lock().unwrap();
        ServiceStats {
            samples_pushed: ring.pushed,
            samples_lost: ring.lost,
            frames_detected: s.frames_detected,
            frames_decoded: s.frames_decoded,
            frames_degraded: s.frames_degraded,
            frames_dropped: s.dropped_overrun + s.dropped_demod + s.dropped_recover,
            dropped_overrun: s.dropped_overrun,
            dropped_demod: s.dropped_demod,
            dropped_recover: s.dropped_recover,
            discarded_at_shutdown: discarded,
            frame_queue_depth: s.frame_queue_depth.clone(),
            out_queue_depth: s.out_queue_depth.clone(),
        }
    }

    /// The configuration this service was spawned with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }
}

/// Emit a drop event (framer- or worker-side) and account it.
fn emit_drop(
    out: &Bounded<ServiceEvent>,
    stats: &Mutex<SharedStats>,
    seq: u64,
    offset: u64,
    reason: DropReason,
) {
    {
        let mut s = stats.lock().unwrap();
        match reason {
            DropReason::Overrun => s.dropped_overrun += 1,
            DropReason::Demod => s.dropped_demod += 1,
            DropReason::Recover => s.dropped_recover += 1,
        }
    }
    telemetry::counter_inc(match reason {
        DropReason::Overrun => "service.frames.dropped.overrun",
        DropReason::Demod => "service.frames.dropped.demod",
        DropReason::Recover => "service.frames.dropped.recover",
    });
    if let Ok(depth) = out.push(ServiceEvent::Dropped {
        seq,
        offset,
        reason,
    }) {
        stats.lock().unwrap().out_queue_depth.record(depth);
    }
}

/// Stage one: scan the sample stream for preambles and cut frame windows.
fn run_framer(
    cfg: &ServiceConfig,
    ring: &SampleRing,
    frame_q: &Bounded<FrameTask>,
    out: &Bounded<ServiceEvent>,
    stats: &Mutex<SharedStats>,
) {
    let rx = Receiver::new_cached(cfg.phy, &cfg.lc, cfg.s);
    let spt = cfg.phy.samples_per_slot();
    let frame_len = rx.frame_slots(cfg.n_bits) * spt;
    let span = rx.detect_span();
    // Back-margin kept before every scan position (window lead + the
    // refinement scan's reach); forward slack cut beyond the frame end.
    let lead = spt;
    let slack = spt;
    // A block [pos, pos+B) is only scanned once the assembly covers every
    // sample a hit anywhere in it could touch: the detector fit at the last
    // offset, the refinement scan past it, and the full cut window.
    let reserve = frame_len + slack + span;

    let mut assembly: Vec<C64> = Vec::new();
    let mut unreliable: Vec<bool> = Vec::new();
    let mut base: u64 = 0; // absolute index of assembly[0]
    let mut pos: u64 = 0; // next candidate offset to scan (absolute)
    let mut seq: u64 = 0;
    let mut eof = false;

    'stream: loop {
        if !eof {
            let mut lost = Vec::new();
            let before = assembly.len();
            let n = {
                let mut u = Vec::new();
                let n = ring.pull(&mut assembly, &mut u, &mut lost);
                unreliable.extend(u);
                n
            };
            if n == 0 {
                eof = true;
            } else {
                // Fold loss placeholders into the unreliability mask; the
                // per-sample distinction only matters for degradation
                // accounting, handled per frame below.
                for (i, &l) in lost.iter().enumerate() {
                    if l {
                        unreliable[before + i] = true;
                    }
                }
            }
        }
        let avail = base + assembly.len() as u64;

        // Scan every block the assembly fully covers.
        while pos + (SCAN_BLOCK + reserve) as u64 <= avail || (eof && pos + span as u64 <= avail) {
            let block_end = if pos + (SCAN_BLOCK + reserve) as u64 <= avail {
                pos + SCAN_BLOCK as u64
            } else {
                // Tail: scan what remains in one clamped block. Hits may
                // yield truncated windows; the worker reports those as
                // demod drops.
                avail - span as u64 + 1
            };
            let from = (pos - base) as usize;
            let to = (block_end - base) as usize;
            let sig = Signal::new(std::mem::take(&mut assembly), cfg.phy.fs);
            let hit = rx.detect_preamble(&sig, from, to);
            let hit = match hit {
                // Refine: the block argmin can land on a shoulder when the
                // block boundary splits the correlation peak, so re-search
                // one slot around the hit and keep that argmin. This is
                // what pins the streaming offset to the whole-signal
                // detection the direct receiver path performs.
                Some((off, _)) => {
                    let lo = off.saturating_sub(lead);
                    let hi = (off + lead + 1).min(sig.len().saturating_sub(span) + 1);
                    rx.detect_preamble(&sig, lo, hi).map(|(o, _)| o)
                }
                None => None,
            };
            assembly = sig.into_samples();

            match hit {
                None => pos = block_end,
                Some(off) => {
                    let abs_offset = base + off as u64;
                    telemetry::counter_inc("service.frames.detected");
                    stats.lock().unwrap().frames_detected += 1;

                    // Cut the window: `lead` samples of back-margin, the
                    // frame body, `slack` samples of forward margin —
                    // clamped at the stream tail.
                    let win_start = off.saturating_sub(lead);
                    let win_end = (off + frame_len + slack).min(assembly.len());
                    let mask: Vec<bool> = unreliable[win_start..win_end].to_vec();
                    let body_end = (off - win_start + frame_len).min(mask.len());
                    let frame_span = &mask[off - win_start..body_end];
                    let flagged = frame_span.iter().filter(|&&b| b).count();
                    let degraded = flagged > 0;

                    if (flagged as f64) > cfg.max_lost_fraction * frame_len as f64 {
                        emit_drop(out, stats, seq, abs_offset, DropReason::Overrun);
                        seq += 1;
                        // Recovery re-scan. When the detection itself sits on
                        // unreliable samples it is likely spurious — garbage
                        // inside an outage span that happened to correlate.
                        // Skipping a whole frame body from here would shadow
                        // a real preamble starting right after the outage, so
                        // advance only past the contiguous flagged run and
                        // resume scanning. A detection on clean samples (a
                        // real preamble whose body got clobbered) still skips
                        // the full frame. The `max` keeps progress strictly
                        // monotone: refinement can pull a hit back to
                        // `pos - lead`, and a bare `abs_offset + spt` could
                        // otherwise re-propose the same scan position forever.
                        let advance = if frame_span.first() == Some(&true) {
                            frame_span.iter().take_while(|&&b| b).count().max(spt)
                        } else {
                            frame_len
                        };
                        pos = (abs_offset + advance as u64).max(pos + spt as u64);
                    } else {
                        let task = FrameTask {
                            seq,
                            abs_offset,
                            rel_off: off - win_start,
                            samples: assembly[win_start..win_end].to_vec(),
                            mask,
                            degraded,
                            detected_at: Instant::now(),
                        };
                        match frame_q.push(task) {
                            Ok(depth) => stats.lock().unwrap().frame_queue_depth.record(depth),
                            Err(_) => break 'stream,
                        }
                        seq += 1;
                        // Skip the frame body: the next preamble cannot
                        // start inside it.
                        pos = abs_offset + frame_len as u64;
                    }
                }
            }

            // Prune consumed samples, keeping the back-margin. A tail hit
            // can leave `pos` past the end of the stream, so clamp the
            // drain to what the assembly actually holds.
            let keep_from = pos.saturating_sub(lead as u64);
            if keep_from > base {
                let k = ((keep_from - base) as usize).min(assembly.len());
                assembly.drain(..k);
                unreliable.drain(..k);
                base += k as u64;
            }
            if eof && pos + span as u64 > avail {
                break;
            }
        }

        if eof {
            break;
        }
    }
    frame_q.close();
}

/// Stage two: decode frame windows into events. Runs until the frame queue
/// is closed and drained.
fn run_worker(
    cfg: &ServiceConfig,
    frame_q: &Bounded<FrameTask>,
    out: &Bounded<ServiceEvent>,
    stats: &Mutex<SharedStats>,
) {
    // `new_cached` shares the expensive offline-training state process-wide,
    // so a pool of workers costs one receiver construction, not N.
    let rx = Receiver::new_cached(cfg.phy, &cfg.lc, cfg.s);
    let bps = cfg.phy.bits_per_symbol();
    let mut batch: Vec<FrameTask> = Vec::with_capacity(cfg.batch);
    while frame_q.pop_batch(cfg.batch, &mut batch) > 0 {
        for task in batch.drain(..) {
            let sig = Signal::new(task.samples, cfg.phy.fs);
            let demod = rx.receive_at_with_quality(&sig, task.rel_off, cfg.n_bits, &task.mask);
            let r = match demod {
                Ok(r) => r,
                Err(_) => {
                    emit_drop(out, stats, task.seq, task.abs_offset, DropReason::Demod);
                    continue;
                }
            };
            // Per-symbol erasure flags → the per-bit mask the MAC eats.
            let bit_mask: Vec<bool> = (0..r.bits.len())
                .map(|j| r.erasures.get(j / bps).copied().unwrap_or(false))
                .collect();
            let rec = recover_with_quality(
                &r.bits,
                &bit_mask,
                cfg.payload_len,
                cfg.coding,
                cfg.scramble_seed,
            );
            let rep = match rec {
                Some(rep) => rep,
                None => {
                    emit_drop(out, stats, task.seq, task.abs_offset, DropReason::Recover);
                    continue;
                }
            };
            telemetry::counter_inc("service.frames.decoded");
            if task.degraded {
                telemetry::counter_inc("service.frames.degraded");
            }
            {
                let mut s = stats.lock().unwrap();
                s.frames_decoded += 1;
                if task.degraded {
                    s.frames_degraded += 1;
                }
            }
            let ev = ServiceEvent::Frame(ServiceFrame {
                seq: task.seq,
                offset: task.abs_offset,
                payload: rep.payload,
                bits: r.bits,
                symbols_corrected: rep.symbols_corrected,
                erasures_filled: rep.erasures_filled,
                erasures_flagged: rep.erasures_flagged,
                degraded: task.degraded,
                latency: task.detected_at.elapsed(),
            });
            match out.push(ev) {
                Ok(depth) => stats.lock().unwrap().out_queue_depth.record(depth),
                Err(_) => return,
            }
        }
    }
}
