//! `retroturbo-serve` — run the streaming decode service against a
//! synthesized sample stream and print what it recovers.
//!
//! ```text
//! retroturbo-serve [frames] [workers] [snr_db]
//! ```
//!
//! Defaults: 24 frames, 2 workers, 35 dB. A feeder thread synthesizes
//! frames with the loopback channel recipe and pushes them into the
//! service's sample ring in small chunks, like a front end delivering ADC
//! buffers; the main thread consumes in-order decode events and prints a
//! per-frame line plus the final pipeline stats.

use retroturbo_mac::CodingChoice;
use retroturbo_service::{loopback_phy, DecodeService, ServiceEvent, Testbed};

fn main() {
    let mut args = std::env::args().skip(1);
    let frames: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(24);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);
    let snr_db: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(35.0);

    let bed = Testbed::new(
        loopback_phy(2, 4),
        20,
        Some(CodingChoice { n: 44, k: 22 }),
        0x5B,
    )
    .with_snr(snr_db);
    let mut cfg = bed.service_config();
    cfg.workers = workers;

    let frame_samples = bed.frame(0, 1).samples.len();
    println!(
        "retroturbo-serve: {frames} frames x {frame_samples} samples, {workers} workers, {snr_db} dB"
    );

    let svc = DecodeService::spawn(cfg);
    let input = svc.input();
    let feeder_bed = bed.clone();
    let feeder = std::thread::spawn(move || {
        const CHUNK: usize = 256; // an ADC buffer's worth per push
        for i in 0..frames {
            let scene = feeder_bed.frame(i, 42);
            for chunk in scene.samples.chunks(CHUNK) {
                input.push(chunk, None);
            }
        }
        input.push(&feeder_bed.idle(2 * frame_samples), None);
        input.close();
    });

    let mut ok = 0u64;
    while let Some(ev) = svc.recv() {
        match ev {
            ServiceEvent::Frame(f) => {
                let expect = bed.payload_for(f.seq);
                let verdict = if f.payload == expect {
                    "ok"
                } else {
                    "MISMATCH"
                };
                if f.payload == expect {
                    ok += 1;
                }
                println!(
                    "frame {:>3} @ {:>8}: {} ({} B, {} sym corrected, {} erasures filled, {:.2} ms)",
                    f.seq,
                    f.offset,
                    verdict,
                    f.payload.len(),
                    f.symbols_corrected,
                    f.erasures_filled,
                    f.latency.as_secs_f64() * 1e3,
                );
            }
            ServiceEvent::Dropped {
                seq,
                offset,
                reason,
            } => {
                println!("frame {seq:>3} @ {offset:>8}: dropped ({reason:?})");
            }
        }
    }
    feeder.join().expect("feeder panicked");
    let stats = svc.shutdown();

    println!(
        "\n{ok}/{frames} payloads recovered; detected {} decoded {} degraded {} dropped {}",
        stats.frames_detected, stats.frames_decoded, stats.frames_degraded, stats.frames_dropped
    );
    println!(
        "samples: {} in, {} lost; mean queue depth frame {:.2} out {:.2}",
        stats.samples_pushed,
        stats.samples_lost,
        stats.frame_queue_depth.mean(),
        stats.out_queue_depth.mean()
    );
    if ok != frames {
        std::process::exit(1);
    }
}
