//! Streaming decode service: a staged receive pipeline from a raw sample
//! ring to recovered frames.
//!
//! Everything below `crates/service` turns the one-shot
//! `retroturbo_core::Receiver` into a long-running ingestion service:
//!
//! * [`SampleRing`] — a lossy bounded ring the producer can always push
//!   into; overruns surface as erasure placeholders, never as skew.
//! * [`Bounded`] — the blocking MPMC queues between stages; their capacity
//!   is the backpressure mechanism.
//! * [`DecodeService`] — the pipeline itself: framer thread → worker pool →
//!   in-order event stream, spawned from a [`ServiceConfig`].
//! * [`Testbed`] — deterministic stream synthesis for tests and benches.
//!
//! Overload policy, stage graph, and the determinism argument are in
//! DESIGN.md §14. The `retroturbo-serve` binary is a runnable demo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod queue;
mod ring;
mod testbed;

pub use pipeline::{
    DecodeService, DropReason, QueueDepth, ServiceConfig, ServiceEvent, ServiceFrame, ServiceInput,
    ServiceStats,
};
pub use queue::Bounded;
pub use ring::{RingStats, SampleRing};
pub use testbed::{loopback_phy, FrameScene, Testbed};
