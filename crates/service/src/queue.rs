//! Bounded MPMC queues for the stage graph.
//!
//! Standard-library only (mutex + two condvars); capacity is the
//! backpressure mechanism: a full queue blocks its producer, which
//! propagates upstream until the lossy sample ring starts degrading.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer multi-consumer queue with blocking push/pop
/// and an explicit close: after [`Bounded::close`], pushes fail and pops
/// drain the remaining items before reporting exhaustion.
#[derive(Debug)]
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct Inner<T> {
    q: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "Bounded: capacity must be at least 1");
        Self {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current occupancy (racy by nature; for observability only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().q.len()
    }

    /// Whether the queue is currently empty (racy; observability only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until there is room, then enqueue. Returns the occupancy
    /// *after* the push (for queue-depth accounting), or `Err(item)` if
    /// the queue was closed.
    pub fn push(&self, item: T) -> Result<usize, T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.closed {
                return Err(item);
            }
            if g.q.len() < self.cap {
                g.q.push_back(item);
                let depth = g.q.len();
                drop(g);
                self.not_empty.notify_one();
                return Ok(depth);
            }
            g = self.not_full.wait(g).unwrap();
        }
    }

    /// Block until an item is available; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.q.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Pop up to `max` items in one lock acquisition, blocking until at
    /// least one is available. Returns the number appended to `out`
    /// (0 only when closed and drained). Batch dequeue is what amortizes
    /// queue synchronisation across packets in the worker pool.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut g = self.inner.lock().unwrap();
        loop {
            if !g.q.is_empty() {
                let n = max.min(g.q.len()).max(1);
                out.extend(g.q.drain(..n));
                drop(g);
                self.not_full.notify_all();
                return n;
            }
            if g.closed {
                return 0;
            }
            g = self.not_empty.wait(g).unwrap();
        }
    }

    /// Close the queue: producers start failing, consumers drain what is
    /// left and then see exhaustion.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = Bounded::new(4);
        for i in 0..4 {
            assert_eq!(q.push(i).unwrap(), i + 1);
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_exhausts() {
        let q = Bounded::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_takes_up_to_max() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(3, &mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.pop_batch(3, &mut out), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_blocks_producer_until_a_pop() {
        let q = Arc::new(Bounded::new(1));
        q.push(10u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(11).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(q.pop(), Some(10));
        h.join().unwrap();
        assert_eq!(q.pop(), Some(11));
    }
}
