//! The ingest sample ring: a bounded, *lossy* buffer between the sample
//! producer (an ADC front end, or the testbed feeder) and the framer stage.
//!
//! Real sample sources cannot wait, so [`SampleRing::push`] never blocks:
//! when the decode side falls behind and the ring wraps, the oldest unread
//! samples are overwritten. Lost samples are not silently dropped from the
//! stream — the reader receives them as zeroed placeholders flagged both
//! `unreliable` and `lost`, so downstream stages keep exact sample
//! alignment and the receiver's quarter-slot rule turns short outages into
//! symbol erasures (the PR 3 errors-and-erasures path) instead of
//! misaligning whole frames. Only when loss swamps a frame does the framer
//! drop it.

use retroturbo_dsp::C64;
use std::sync::{Condvar, Mutex};

/// Aggregate ring accounting, returned by [`SampleRing::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Samples accepted from the producer.
    pub pushed: u64,
    /// Samples overwritten before the reader consumed them.
    pub lost: u64,
}

#[derive(Debug)]
struct State {
    /// Sample storage, indexed by absolute position modulo capacity.
    buf: Vec<C64>,
    /// Producer-supplied per-sample unreliability, same indexing.
    unreliable: Vec<bool>,
    /// Absolute position of the next write.
    write: u64,
    /// Absolute position of the next *surviving* unread sample.
    read: u64,
    /// Overwritten-before-read samples awaiting delivery as placeholders.
    /// Loss always eats the oldest unread positions, so the pending span
    /// sits contiguously at the front of the unread region.
    pending_lost: u64,
    /// Total samples ever overwritten before being read.
    lost: u64,
    closed: bool,
}

/// A bounded single-reader sample ring with overwrite-oldest semantics.
#[derive(Debug)]
pub struct SampleRing {
    state: Mutex<State>,
    data_ready: Condvar,
    cap: usize,
}

impl SampleRing {
    /// A ring holding `cap` samples (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "SampleRing: capacity must be at least 1");
        Self {
            state: Mutex::new(State {
                buf: vec![C64::new(0.0, 0.0); cap],
                unreliable: vec![false; cap],
                write: 0,
                read: 0,
                pending_lost: 0,
                lost: 0,
                closed: false,
            }),
            data_ready: Condvar::new(),
            cap,
        }
    }

    /// The configured capacity in samples.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Append samples; never blocks. `unreliable` (same length when given)
    /// carries front-end confidence flags alongside the samples. If the
    /// reader is more than a full ring behind, the overrun samples become
    /// pending loss placeholders. Returns how many samples this push
    /// overwrote.
    pub fn push(&self, samples: &[C64], unreliable: Option<&[bool]>) -> u64 {
        if let Some(m) = unreliable {
            assert_eq!(m.len(), samples.len(), "push: mask length mismatch");
        }
        let mut g = self.state.lock().unwrap();
        assert!(!g.closed, "push after close");
        for (i, &z) in samples.iter().enumerate() {
            let at = (g.write % self.cap as u64) as usize;
            g.buf[at] = z;
            g.unreliable[at] = unreliable.map(|m| m[i]).unwrap_or(false);
            g.write += 1;
        }
        let floor = g.write.saturating_sub(self.cap as u64);
        let newly_lost = floor.saturating_sub(g.read);
        if newly_lost > 0 {
            g.read = floor;
            g.pending_lost += newly_lost;
            g.lost += newly_lost;
        }
        drop(g);
        self.data_ready.notify_one();
        newly_lost
    }

    /// Block until samples are available (or the ring is closed), then
    /// drain everything unread. Consumed samples are appended to `out` /
    /// `unreliable`; positions the producer overwrote before this pull are
    /// appended first as zeros flagged in *both* `unreliable` and `lost`,
    /// so the reader's absolute sample indexing never skews. Returns the
    /// number of samples appended — 0 only when closed and fully drained.
    pub fn pull(
        &self,
        out: &mut Vec<C64>,
        unreliable: &mut Vec<bool>,
        lost: &mut Vec<bool>,
    ) -> usize {
        let mut g = self.state.lock().unwrap();
        loop {
            let n = g.pending_lost as usize + (g.write - g.read) as usize;
            if n > 0 {
                for _ in 0..g.pending_lost {
                    out.push(C64::new(0.0, 0.0));
                    unreliable.push(true);
                    lost.push(true);
                }
                g.pending_lost = 0;
                for pos in g.read..g.write {
                    let at = (pos % self.cap as u64) as usize;
                    out.push(g.buf[at]);
                    unreliable.push(g.unreliable[at]);
                    lost.push(false);
                }
                g.read = g.write;
                return n;
            }
            if g.closed {
                return 0;
            }
            g = self.data_ready.wait(g).unwrap();
        }
    }

    /// Signal end of input: a draining reader sees remaining samples, then
    /// exhaustion.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.data_ready.notify_all();
    }

    /// Aggregate push/loss counters.
    pub fn stats(&self) -> RingStats {
        let g = self.state.lock().unwrap();
        RingStats {
            pushed: g.write,
            lost: g.lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(re: f64) -> C64 {
        C64::new(re, 0.0)
    }

    #[test]
    fn lossless_round_trip_below_capacity() {
        let ring = SampleRing::new(8);
        let samples: Vec<C64> = (0..6).map(|i| z(i as f64)).collect();
        let mask = vec![false, true, false, false, true, false];
        assert_eq!(ring.push(&samples, Some(&mask)), 0);
        let (mut out, mut unrel, mut lost) = (Vec::new(), Vec::new(), Vec::new());
        assert_eq!(ring.pull(&mut out, &mut unrel, &mut lost), 6);
        assert_eq!(out, samples);
        assert_eq!(unrel, mask);
        assert!(lost.iter().all(|&b| !b));
        assert_eq!(ring.stats(), RingStats { pushed: 6, lost: 0 });
    }

    #[test]
    fn overrun_delivers_placeholders_then_survivors() {
        let ring = SampleRing::new(4);
        let samples: Vec<C64> = (0..10).map(|i| z(i as f64)).collect();
        // 10 samples through a 4-deep ring with no reader: the oldest 6
        // die, but the reader still sees a 10-sample stream — 6 zeroed
        // placeholders, then the 4 survivors — so alignment never skews.
        assert_eq!(ring.push(&samples, None), 6);
        let (mut out, mut unrel, mut lost) = (Vec::new(), Vec::new(), Vec::new());
        assert_eq!(ring.pull(&mut out, &mut unrel, &mut lost), 10);
        assert!(out[..6].iter().all(|&s| s == z(0.0)));
        assert_eq!(&out[6..], &samples[6..]);
        assert!(unrel[..6].iter().all(|&b| b) && lost[..6].iter().all(|&b| b));
        assert!(!unrel[6..].iter().any(|&b| b) && !lost[6..].iter().any(|&b| b));
        assert_eq!(
            ring.stats(),
            RingStats {
                pushed: 10,
                lost: 6
            }
        );
    }

    #[test]
    fn repeated_overruns_accumulate_contiguous_placeholders() {
        let ring = SampleRing::new(2);
        ring.push(&[z(0.0), z(1.0), z(2.0)], None); // loses sample 0
        ring.push(&[z(3.0)], None); // loses sample 1
        let (mut out, mut unrel, mut lost) = (Vec::new(), Vec::new(), Vec::new());
        assert_eq!(ring.pull(&mut out, &mut unrel, &mut lost), 4);
        assert_eq!(lost, vec![true, true, false, false]);
        assert_eq!(&out[2..], &[z(2.0), z(3.0)]);
        assert_eq!(ring.stats().lost, 2);
    }

    #[test]
    fn interleaved_pulls_keep_every_sample() {
        let ring = SampleRing::new(4);
        let mut got = Vec::new();
        let (mut unrel, mut lost) = (Vec::new(), Vec::new());
        for chunk in 0..5 {
            let samples: Vec<C64> = (0..3).map(|i| z((chunk * 3 + i) as f64)).collect();
            ring.push(&samples, None);
            ring.pull(&mut got, &mut unrel, &mut lost);
        }
        let want: Vec<C64> = (0..15).map(|i| z(i as f64)).collect();
        assert_eq!(got, want);
        assert_eq!(ring.stats().lost, 0);
    }

    #[test]
    fn close_then_pull_reports_exhaustion() {
        let ring = SampleRing::new(4);
        ring.push(&[z(1.0)], None);
        ring.close();
        let (mut out, mut unrel, mut lost) = (Vec::new(), Vec::new(), Vec::new());
        assert_eq!(ring.pull(&mut out, &mut unrel, &mut lost), 1);
        assert_eq!(ring.pull(&mut out, &mut unrel, &mut lost), 0);
    }
}
