//! Deterministic stream synthesis for exercising the decode service.
//!
//! Reuses the loopback-matrix channel recipe (rotation, gain, ambient DC,
//! AWGN) to build per-frame scenes whose ground truth is known, so the
//! service's output can be bit-compared against direct `Receiver` calls
//! on the identical samples. Per-frame noise seeds come from
//! `retroturbo_runtime::derive_seed`, so a stream is a pure function of
//! `(config, run_seed)` regardless of how it is chunked into the ring.

use crate::pipeline::ServiceConfig;
use retroturbo_core::{Modulator, PhyConfig, TagModel};
use retroturbo_dsp::noise::{sigma_for_snr, NoiseSource};
use retroturbo_dsp::C64;
use retroturbo_lcm::LcParams;
use retroturbo_mac::{protect, CodingChoice};

/// One synthesized frame: idle guard, then the channel-distorted waveform,
/// with ground truth attached.
#[derive(Debug, Clone)]
pub struct FrameScene {
    /// `pad` idle samples followed by the frame, channel + noise applied.
    pub samples: Vec<C64>,
    /// The payload the MAC should recover.
    pub payload: Vec<u8>,
    /// The protected bits the PHY should demodulate.
    pub bits: Vec<bool>,
    /// Frame start within `samples` (always the configured pad).
    pub offset: usize,
}

/// Scene generator: PHY + MAC settings plus the loopback channel model.
#[derive(Debug, Clone)]
pub struct Testbed {
    cfg: PhyConfig,
    params: LcParams,
    payload_len: usize,
    coding: Option<CodingChoice>,
    scramble_seed: u8,
    /// Channel gain magnitude.
    pub gain: f64,
    /// Polarisation rotation in degrees (doubled in the constellation).
    pub rot_deg: f64,
    /// Ambient-light complex DC offset.
    pub dc: C64,
    /// Idle samples before each frame.
    pub pad: usize,
    /// AWGN level; `f64::INFINITY` for a noiseless channel.
    pub snr_db: f64,
}

impl Testbed {
    /// A testbed over the loopback-matrix channel (0.8 gain, 2×25°
    /// rotation, ambient DC, 40 dB SNR, 177-sample pad).
    pub fn new(
        cfg: PhyConfig,
        payload_len: usize,
        coding: Option<CodingChoice>,
        scramble_seed: u8,
    ) -> Self {
        Self {
            cfg,
            params: LcParams::default(),
            payload_len,
            coding,
            scramble_seed,
            gain: 0.8,
            rot_deg: 25.0,
            dc: C64::new(0.12, -0.07),
            pad: 177,
            snr_db: 40.0,
        }
    }

    /// Set the AWGN level (builder style).
    pub fn with_snr(mut self, snr_db: f64) -> Self {
        self.snr_db = snr_db;
        self
    }

    /// The channel response applied to every transmitted sample.
    fn channel(&self, z: C64) -> C64 {
        C64::from_polar(self.gain, (2.0 * self.rot_deg).to_radians()) * z + self.dc
    }

    /// Deterministic per-frame payload: a byte pattern varying with the
    /// frame index so consecutive frames differ.
    pub fn payload_for(&self, frame_index: u64) -> Vec<u8> {
        (0..self.payload_len)
            .map(|i| (i as u64 * 29 + frame_index * 131 + 3) as u8)
            .collect()
    }

    /// Synthesize frame `frame_index` of run `run_seed`: protect, modulate,
    /// render through the tag model, apply the channel, add AWGN seeded by
    /// `derive_seed(run_seed, frame_index)`.
    pub fn frame(&self, frame_index: u64, run_seed: u64) -> FrameScene {
        let payload = self.payload_for(frame_index);
        let bits = protect(&payload, self.coding, self.scramble_seed);
        let frame = Modulator::new(self.cfg).modulate(&bits);
        let wave = TagModel::nominal(&self.cfg, &self.params).render_levels(&frame.levels);

        let mut samples = vec![self.channel(C64::new(-1.0, -1.0)); self.pad];
        samples.extend(wave.iter().map(|&z| self.channel(z)));
        if self.snr_db.is_finite() {
            let seed = retroturbo_runtime::derive_seed(run_seed, frame_index);
            NoiseSource::new(seed).add_awgn(&mut samples, sigma_for_snr(self.snr_db, self.gain));
        }
        FrameScene {
            samples,
            payload,
            bits,
            offset: self.pad,
        }
    }

    /// `n` idle (rest-level) channel samples with no noise — a quiet tail
    /// so the framer can finish scanning the final frame.
    pub fn idle(&self, n: usize) -> Vec<C64> {
        vec![self.channel(C64::new(-1.0, -1.0)); n]
    }

    /// A [`ServiceConfig`] matching this testbed's link parameters.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig::new(self.cfg, self.payload_len, self.coding, self.scramble_seed)
    }

    /// The PHY configuration in use.
    pub fn phy(&self) -> &PhyConfig {
        &self.cfg
    }
}

/// The loopback-matrix PHY configuration at DSM depth `l_order` and PQAM
/// order `pqam_order` (0.5 ms slots at 40 kS/s, 12 preamble slots, 2
/// training rounds).
pub fn loopback_phy(l_order: usize, pqam_order: usize) -> PhyConfig {
    PhyConfig {
        l_order,
        pqam_order,
        t_slot: 0.5e-3,
        fs: 40_000.0,
        v_memory: 3,
        k_branches: 8,
        preamble_slots: 12,
        training_rounds: 2,
    }
}
