//! Deterministic parallel sweep runtime.
//!
//! The simulator's experiment drivers are embarrassingly parallel: a sweep is
//! a list of independent points, each seeded explicitly. This crate provides
//! the one primitive they need — [`par_map_seeded`] — a parallel map that is
//! **bit-for-bit identical at every thread count**:
//!
//! * every item's RNG seed is derived *from the run seed and the item index*
//!   ([`derive_seed`], a splitmix64 mix), never from thread identity or
//!   scheduling order;
//! * results are collected **in index order**, so the output `Vec` is
//!   independent of which worker finished first;
//! * worker count comes from `RETROTURBO_THREADS` (default: available
//!   parallelism); `RETROTURBO_THREADS=1` degenerates to a plain sequential
//!   loop on the calling thread.
//!
//! Nested calls (a parallel point sweep whose per-point work itself calls a
//! parallel packet loop) run the inner map sequentially on the worker thread,
//! so thread count never multiplies and inner seeds stay index-derived.
//!
//! Built on `std::thread::scope` and atomics only; the sole dependency is
//! the (no-op by default) `retroturbo-telemetry` instrumentation layer,
//! which reports map/worker throughput when the `telemetry` feature is on.

#![forbid(unsafe_code)]

use retroturbo_telemetry as telemetry;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// splitmix64 finalizer: the standard 64-bit mixer from Vigna's
/// `splitmix64.c`. Bijective, so distinct inputs give distinct outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the RNG seed for item `index` of a run seeded with `run_seed`.
///
/// Two mixing rounds separate the seed and index domains so that
/// `derive_seed(s, i) != derive_seed(s + 1, i - k)` collisions are no more
/// likely than random. This is the *only* sanctioned way to seed per-item
/// work inside a parallel region.
#[inline]
pub fn derive_seed(run_seed: u64, index: u64) -> u64 {
    splitmix64(splitmix64(run_seed).wrapping_add(splitmix64(index ^ 0xA5A5_A5A5_A5A5_A5A5)))
}

thread_local! {
    /// Set while the current thread is a `par_map_seeded` worker; nested
    /// calls observe it and run sequentially.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
    /// Scoped thread-count override installed by [`with_threads`]; `0` means
    /// "no override". Thread-local so concurrent tests don't race.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads a top-level [`par_map_seeded`] will use.
///
/// Resolution order: [`with_threads`] override, then the `RETROTURBO_THREADS`
/// environment variable, then `std::thread::available_parallelism()`.
/// Unparseable or zero values fall back to available parallelism.
pub fn thread_count() -> usize {
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(v) = std::env::var("RETROTURBO_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f` with the worker-thread count pinned to `n`, ignoring
/// `RETROTURBO_THREADS`. Used by determinism tests to compare thread counts
/// inside one process.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n));
    let _restore = Restore(prev);
    f()
}

/// True if the caller is already inside a parallel region (and a nested
/// `par_map_seeded` would therefore run sequentially).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Deterministic seeded parallel map.
///
/// Applies `f(index, item_seed, item)` to every item and returns the results
/// **in item order**. `item_seed` is [`derive_seed`]`(run_seed, index)`; the
/// output is bit-for-bit independent of the worker-thread count.
///
/// Panics in `f` are propagated to the caller (the scope joins all workers
/// first).
pub fn par_map_seeded<T, R, F>(run_seed: u64, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, u64, T) -> R + Sync,
{
    par_map_seeded_with(run_seed, items, || (), |(), i, seed, item| f(i, seed, item))
}

/// [`par_map_seeded`] with per-worker scratch state.
///
/// `init` runs once on each worker thread (and once on the calling thread
/// for the sequential path) to build that worker's scratch; `f` receives a
/// mutable borrow of it alongside the usual `(index, item_seed, item)`.
/// Because per-item seeds are index-derived and results are collected in
/// item order, the output remains bit-for-bit independent of the thread
/// count *provided* `f`'s result does not depend on scratch history — the
/// intended use is allocation reuse (buffers, arenas, panel state), where
/// the scratch contents are fully overwritten per item.
///
/// Panics in `f` are propagated to the caller (the scope joins all workers
/// first).
pub fn par_map_seeded_with<T, R, S, I, F>(run_seed: u64, items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, u64, T) -> R + Sync,
{
    let n_threads = thread_count();
    telemetry::counter_inc("runtime.par_maps");
    telemetry::counter_add("runtime.par_items", items.len() as u64);
    if n_threads <= 1 || items.len() <= 1 || in_parallel_region() {
        telemetry::gauge_set("runtime.workers", 1.0);
        let mut scratch = init();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(&mut scratch, i, derive_seed(run_seed, i as u64), item))
            .collect();
    }

    let n_items = items.len();
    let n_workers = n_threads.min(n_items);
    telemetry::gauge_set("runtime.workers", n_workers as f64);
    // Work queue: items behind a mutex of Options, claimed by an atomic
    // cursor. Claiming order varies between runs; result placement does not.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|it| Mutex::new(Some(it))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n_items).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let worker = || {
            IN_PARALLEL_REGION.with(|c| c.set(true));
            let mut scratch = init();
            // Per-worker throughput, recorded only when telemetry is live
            // (`enabled()` is const, so the disabled build takes no clock
            // reads). Wall-clock values never feed back into results.
            let t0 = telemetry::enabled().then(std::time::Instant::now);
            let mut n_done = 0u64;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_items {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("retroturbo-runtime: work slot poisoned")
                    .take()
                    .expect("retroturbo-runtime: work item claimed twice");
                let out = f(&mut scratch, i, derive_seed(run_seed, i as u64), item);
                *results[i]
                    .lock()
                    .expect("retroturbo-runtime: result slot poisoned") = Some(out);
                n_done += 1;
            }
            if let Some(t0) = t0 {
                let secs = t0.elapsed().as_secs_f64();
                if n_done > 0 && secs > 0.0 {
                    telemetry::gauge_set("runtime.worker_items_per_s", n_done as f64 / secs);
                }
            }
            IN_PARALLEL_REGION.with(|c| c.set(false));
        };
        // The calling thread is worker 0; spawn the rest.
        let handles: Vec<_> = (1..n_workers).map(|_| scope.spawn(worker)).collect();
        worker();
        for h in handles {
            // Propagate worker panics to the caller rather than aborting the
            // scope with a double panic later.
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("retroturbo-runtime: result slot poisoned")
                .unwrap_or_else(|| panic!("retroturbo-runtime: item {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First three outputs of splitmix64 seeded with 1234567 (from the
        // reference C implementation).
        assert_eq!(splitmix64(1234567), 6457827717110365317);
        assert_eq!(splitmix64(0), 16294208416658607535);
    }

    #[test]
    fn derived_seeds_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..8u64 {
            for i in 0..64u64 {
                assert!(seen.insert(derive_seed(s, i)), "collision at ({s},{i})");
            }
        }
    }

    #[test]
    fn map_matches_sequential_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let f = |i: usize, seed: u64, x: u64| (i as u64, seed, splitmix64(seed ^ x));
        let seq = with_threads(1, || par_map_seeded(42, items.clone(), f));
        for n in [2, 3, 8] {
            let par = with_threads(n, || par_map_seeded(42, items.clone(), f));
            assert_eq!(seq, par, "thread count {n} diverged");
        }
    }

    #[test]
    fn preserves_item_order() {
        let out = with_threads(4, || {
            par_map_seeded(7, (0..100u32).collect(), |i, _seed, x| {
                assert_eq!(i as u32, x);
                x * 2
            })
        });
        assert_eq!(out, (0..100u32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_map_matches_plain_map_at_any_thread_count() {
        // The scratch-threading variant must agree with the plain map when
        // the scratch is used only as a reusable buffer.
        let items: Vec<u64> = (0..29).collect();
        let plain = with_threads(1, || {
            par_map_seeded(9, items.clone(), |i, seed, x| {
                splitmix64(seed ^ x) ^ i as u64
            })
        });
        for n in [1, 2, 5] {
            let scratched = with_threads(n, || {
                par_map_seeded_with(9, items.clone(), Vec::<u64>::new, |buf, i, seed, x| {
                    buf.clear();
                    buf.push(splitmix64(seed ^ x));
                    buf[0] ^ i as u64
                })
            });
            assert_eq!(plain, scratched, "thread count {n} diverged");
        }
    }

    #[test]
    fn scratch_init_runs_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let out = with_threads(3, || {
            par_map_seeded_with(
                0,
                (0..30u32).collect::<Vec<_>>(),
                || inits.fetch_add(1, Ordering::Relaxed),
                |_, _, _, x| x,
            )
        });
        assert_eq!(out, (0..30).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!((1..=3).contains(&n), "init ran {n} times");
    }

    #[test]
    fn nested_maps_run_sequentially() {
        let out = with_threads(4, || {
            par_map_seeded(1, vec![(); 8], |_, seed, ()| {
                assert!(in_parallel_region());
                par_map_seeded(seed, vec![(); 4], |_, inner_seed, ()| inner_seed)
            })
        });
        let seq = with_threads(1, || {
            par_map_seeded(1, vec![(); 8], |_, seed, ()| {
                par_map_seeded(seed, vec![(); 4], |_, inner_seed, ()| inner_seed)
            })
        });
        assert_eq!(out, seq);
        assert!(!in_parallel_region());
    }

    #[test]
    fn with_threads_restores_previous_override() {
        with_threads(3, || {
            assert_eq!(thread_count(), 3);
            with_threads(5, || assert_eq!(thread_count(), 5));
            assert_eq!(thread_count(), 3);
        });
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_seeded(0, empty, |_, _, x: u8| x).is_empty());
        assert_eq!(par_map_seeded(0, vec![9u8], |_, _, x| x), vec![9]);
    }
}
