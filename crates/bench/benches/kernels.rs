//! Criterion benchmarks for the hot kernels of the RetroTurbo pipeline:
//! LCM ODE integration, fingerprint emulation, waveform rendering, preamble
//! search, online training, the K-branch DFE, and the Reed–Solomon codec.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use retroturbo_coding::RsCode;
use retroturbo_core::perf_index::min_distance;
use retroturbo_core::training::{OfflineTraining, OnlineTrainer};
use retroturbo_core::{Equalizer, Modulator, PhyConfig, PreambleDetector, TagModel};
use retroturbo_dsp::noise::NoiseSource;
use retroturbo_dsp::{Signal, C64};
use retroturbo_lcm::dynamics::{simulate, LcState};
use retroturbo_lcm::{FingerprintSet, Heterogeneity, LcParams, Panel, PanelKernel};
use retroturbo_sim::{LinkBudget, LinkSimulator, Scene};

fn bench_cfg() -> PhyConfig {
    let mut c = PhyConfig::default_8kbps();
    c.preamble_slots = 24;
    c.training_rounds = 8;
    c
}

fn lcm_ode(c: &mut Criterion) {
    let params = LcParams::default();
    let drive: Vec<bool> = (0..4000).map(|i| (i / 20) % 3 == 0).collect();
    let mut g = c.benchmark_group("lcm");
    g.throughput(Throughput::Elements(drive.len() as u64));
    g.bench_function("ode_simulate_100ms", |b| {
        b.iter(|| simulate(&params, LcState::relaxed(), &drive, 25e-6))
    });
    g.finish();
}

fn fingerprint_emulation(c: &mut Criterion) {
    let set = FingerprintSet::collect(&LcParams::default(), 8, 0.5e-3, 40_000.0);
    let bits: Vec<bool> = (0..2000).map(|i| (i * 7) % 3 == 0).collect();
    let mut g = c.benchmark_group("lcm");
    g.throughput(Throughput::Elements(bits.len() as u64));
    g.bench_function("fingerprint_emulate_1s", |b| {
        b.iter(|| set.emulate_pixel(&bits))
    });
    g.finish();
}

fn render(c: &mut Criterion) {
    let cfg = bench_cfg();
    let model = TagModel::nominal(&cfg, &LcParams::default());
    let m = Modulator::new(cfg);
    let bits: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
    let frame = m.modulate(&bits);
    let mut g = c.benchmark_group("phy");
    g.throughput(Throughput::Elements(frame.levels.len() as u64));
    g.bench_function("render_128B_frame", |b| {
        b.iter(|| model.render_levels(&frame.levels))
    });
    g.finish();
}

fn panel_simulate(c: &mut Criterion) {
    let cfg = bench_cfg();
    let pristine = Panel::retroturbo(
        cfg.l_order,
        cfg.bits_per_module(),
        LcParams::default(),
        Heterogeneity::typical(),
        5,
    );
    let m = Modulator::new(cfg);
    let frame = m.modulate(&(0..512).map(|i| (i * 11) % 3 == 0).collect::<Vec<_>>());
    let cmds = frame.drive_commands(&cfg);
    let n = frame.total_slots() * cfg.samples_per_slot();
    let mut kernel = PanelKernel::from_panel(&pristine);
    let mut out = vec![C64::default(); n];
    let mut g = c.benchmark_group("lcm");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("panel_simulate_soa", |b| {
        b.iter(|| {
            kernel.restore();
            kernel.simulate_into(&cmds, cfg.fs, &mut out);
        })
    });
    g.bench_function("panel_simulate_reference", |b| {
        b.iter_batched(
            || pristine.clone(),
            |mut p| p.simulate_reference(&cmds, n, cfg.fs),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn preamble_search(c: &mut Criterion) {
    let cfg = bench_cfg();
    let model = TagModel::nominal(&cfg, &LcParams::default());
    let det = PreambleDetector::new(&cfg, &model);
    let m = Modulator::new(cfg);
    let frame = m.modulate(&[true; 64]);
    let mut wave = vec![retroturbo_dsp::C64::new(-1.0, -1.0); 400];
    wave.extend(model.render_levels(&frame.levels));
    let mut ns = NoiseSource::new(1);
    ns.add_awgn(&mut wave, 0.02);
    let sig = Signal::new(wave, cfg.fs);
    let mut g = c.benchmark_group("phy");
    g.bench_function("preamble_search_500_offsets", |b| {
        b.iter(|| det.detect_in(&sig, 0, 500))
    });
    g.bench_function("preamble_search_reference_500_offsets", |b| {
        b.iter(|| det.detect_in_reference(&sig, 0, 500))
    });
    g.finish();
}

fn packet_pipeline(c: &mut Criterion) {
    let sim = LinkSimulator::new(bench_cfg(), LinkBudget::fov10(), Scene::default_at(3.0), 9);
    let mut scratch = sim.make_scratch();
    let bits: Vec<bool> = (0..256).map(|i| (i * 13) % 5 < 2).collect();
    let mut g = c.benchmark_group("sim");
    g.bench_function("run_packet_fused", |b| {
        b.iter(|| sim.run_packet_with(&mut scratch, &bits, 3))
    });
    g.bench_function("run_packet_reference", |b| {
        b.iter(|| sim.run_packet_reference(&bits, 3))
    });
    g.finish();
}

fn online_training(c: &mut Criterion) {
    let cfg = bench_cfg();
    let params = LcParams::default();
    let model = TagModel::nominal(&cfg, &params);
    let offline = OfflineTraining::collect(
        &cfg,
        &params,
        &OfflineTraining::default_variants(&params),
        3,
    );
    let trainer = OnlineTrainer::new(cfg, &offline);
    let mut levels = Modulator::preamble_levels(&cfg);
    levels.extend(Modulator::training_levels(&cfg));
    let rx = model.render_levels(&levels);
    let mut g = c.benchmark_group("phy");
    g.bench_function("online_training", |b| b.iter(|| trainer.train(&rx)));
    g.bench_function("online_training_reference", |b| {
        b.iter(|| trainer.train_reference(&rx))
    });
    g.finish();
}

fn perf_index_search(c: &mut Criterion) {
    let cfg = bench_cfg();
    let model = TagModel::nominal(&cfg, &LcParams::default());
    let mut g = c.benchmark_group("perf");
    g.bench_function("min_distance_16slots_8probes", |b| {
        b.iter(|| min_distance(&cfg, &model, 16, 8, 3))
    });
    g.finish();
}

fn dfe(c: &mut Criterion) {
    let cfg = bench_cfg();
    let model = TagModel::nominal(&cfg, &LcParams::default());
    let m = Modulator::new(cfg);
    let bits: Vec<bool> = (0..512).map(|i| (i * 11) % 3 == 0).collect();
    let frame = m.modulate(&bits);
    let mut wave = model.render_levels(&frame.levels);
    let mut ns = NoiseSource::new(2);
    ns.add_awgn(&mut wave, 0.01);
    let known = frame.levels[..frame.payload_start()].to_vec();
    let mut g = c.benchmark_group("phy");
    g.throughput(Throughput::Elements(frame.payload_slots as u64));
    for k in [1usize, 16] {
        let eq = Equalizer::new(cfg).with_branches(k);
        g.bench_function(format!("dfe_equalize_k{k}_128sym"), |b| {
            b.iter(|| eq.equalize(&wave, &model, &known, frame.payload_slots))
        });
        g.bench_function(format!("dfe_equalize_reference_k{k}_128sym"), |b| {
            b.iter(|| eq.equalize_reference(&wave, &model, &known, frame.payload_slots))
        });
    }
    g.finish();
}

fn reed_solomon(c: &mut Criterion) {
    let rs = RsCode::new(255, 223);
    let msg: Vec<u8> = (0..223).map(|i| (i * 37) as u8).collect();
    let cw = rs.encode(&msg);
    let mut corrupted = cw.clone();
    for e in 0..16 {
        corrupted[e * 13] ^= 0xA5;
    }
    let mut g = c.benchmark_group("coding");
    g.throughput(Throughput::Bytes(255));
    g.bench_function("rs_encode_255_223", |b| b.iter(|| rs.encode(&msg)));
    g.bench_function("rs_decode_clean", |b| {
        b.iter_batched(
            || cw.clone(),
            |w| rs.decode(&w).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("rs_decode_16_errors", |b| {
        b.iter_batched(
            || corrupted.clone(),
            |w| rs.decode(&w).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = lcm_ode, fingerprint_emulation, render, panel_simulate, preamble_search, online_training, perf_index_search, dfe, reed_solomon, packet_pipeline
}
criterion_main!(kernels);
