//! Discussion (§8 "Photodiode versus Camera"): exposure integration destroys
//! the DSM slot structure.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::multiaccess::camera_exposure_loss;

fn main() {
    banner(
        "ext-camera",
        "slot-information retention vs receiver exposure time",
    );
    let pts = camera_exposure_loss(&[2000.0, 480.0, 240.0, 120.0, 60.0, 30.0], 1);
    header(&["fps", "exposure_ms", "slot_info_retained"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}",
            fmt(p.fps),
            fmt(1e3 / p.fps),
            fmt(p.surviving_variance)
        );
    }
    eprintln!("# 2000 fps = photodiode-class slot-rate sampling (reference)");
}
