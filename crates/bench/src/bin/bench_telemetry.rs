//! Telemetry snapshot bench: run one robustness sweep point through the
//! instrumented pipeline and export the registry as `BENCH_telemetry.json`
//! (override the path with `BENCH_TELEMETRY_OUT`) plus a TSV table on
//! stdout.
//!
//! Built with `--features telemetry` this self-validates: the snapshot must
//! contain the preamble-margin, DFE-residual, RS-correction, and per-stage
//! latency metric families, or the process exits nonzero — a CI tripwire
//! against instrumentation silently falling out of the pipeline. Built
//! without the feature it documents the no-op contract by emitting an
//! `"enabled": false` snapshot with zero metrics.

use std::io::Write as _;

use retroturbo_bench::banner;
use retroturbo_core::PhyConfig;
use retroturbo_sim::experiments::robustness::sweep_over;
use retroturbo_sim::{ImpairmentConfig, LinkBudget, LinkSimulator, Scene};
use retroturbo_telemetry as telemetry;

/// Metric families the acceptance contract requires from one robustness
/// sweep point: preamble margin, DFE iterations + residual, RS corrections,
/// and the per-stage receive latencies.
const REQUIRED: &[&str] = &[
    "preamble.margin",
    "dfe.slots",
    "dfe.residual",
    "rs.erasure_decodes",
    "rx.detect",
    "rx.train",
    "rx.equalize",
    "rx.demap",
    "arq.exchanges",
];

fn main() {
    banner(
        "telemetry",
        "instrumented robustness sweep point -> BENCH_telemetry.json",
    );
    telemetry::reset();

    // One blockage point exercises every instrumented layer: preamble
    // detection, training, DFE, erasure flagging, RS errors-and-erasures,
    // and the ARQ loop — the same workload shape as the robustness bench.
    let grid = vec![(
        "blockage_duty",
        0.1,
        ImpairmentConfig {
            blockage_duty: 0.1,
            blockage_len: 150,
            ..ImpairmentConfig::none()
        },
    )];
    let rows = sweep_over(grid, 30.0, 4, 24, 7);
    eprintln!(
        "# sweep point: blockage_duty=0.1 -> ber={:.4} fer={:.2} flagged={}",
        rows[0].ber, rows[0].fer, rows[0].erasures_flagged
    );

    // The impaired link pins the frame offset and trains offline, so a short
    // full-pipeline run covers the remaining families: preamble *search*
    // (detection margin) and per-packet online training.
    let cfg = PhyConfig {
        l_order: 4,
        pqam_order: 16,
        t_slot: 0.5e-3,
        fs: 40_000.0,
        v_memory: 3,
        k_branches: 8,
        preamble_slots: 12,
        training_rounds: 2,
    };
    let mut sim = LinkSimulator::new(cfg, LinkBudget::fov10(), Scene::default_at(4.0), 42);
    let ber = sim.run_ber(2, 16);
    eprintln!("# field point: 4 m -> ber={ber:.4}");

    let snap = telemetry::snapshot();
    print!("{}", snap.to_tsv());

    let path =
        std::env::var("BENCH_TELEMETRY_OUT").unwrap_or_else(|_| "BENCH_telemetry.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_telemetry.json");
    f.write_all(snap.to_json().as_bytes())
        .expect("write BENCH_telemetry.json");
    eprintln!("# wrote {path} ({} metrics)", snap.metrics.len());

    if telemetry::enabled() {
        let missing: Vec<&str> = REQUIRED
            .iter()
            .copied()
            .filter(|name| snap.get(name).is_none())
            .collect();
        if !missing.is_empty() {
            eprintln!("# MISSING required metric families: {missing:?}");
            std::process::exit(1);
        }
        eprintln!("# all {} required metric families present", REQUIRED.len());
    } else {
        assert!(
            snap.metrics.is_empty(),
            "no-op build produced a non-empty snapshot"
        );
        eprintln!("# telemetry feature off: empty snapshot (compile-out contract)");
    }
}
