//! Regenerates Fig. 17a: DFE branch count (K = 1 / 16 / Viterbi) vs distance.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig17a_dfe_branches, Effort};

fn main() {
    banner(
        "fig17a",
        "DFE branches: K=16 near-optimal, K=1 loses ~10% of range (paper)",
    );
    let pts = fig17a_dfe_branches(&[5.0, 6.0, 6.5, 7.0, 7.5, 8.0], Effort::from_env(), 1);
    header(&["distance_m", "equalizer", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
}
