//! Regenerates Tab. 4: BER under five ambient human-mobility cases.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::tab4_human_mobility, Effort};

fn main() {
    banner(
        "tab4",
        "BER with ambient human mobility (paper: all below 0.3%)",
    );
    let rows = tab4_human_mobility(Effort::from_env(), 1);
    header(&["case", "ber_percent"]);
    for r in &rows {
        println!("{}\t{}", r.label, fmt(r.ber * 100.0));
    }
}
