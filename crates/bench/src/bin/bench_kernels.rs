//! Machine-readable kernel benchmark: times the optimized hot kernels (DFE
//! branch extension, fingerprint emulation error, the online-training
//! solve, the SoA panel ODE, the Gram preamble search, the fused packet
//! pipeline) against their retained reference implementations, plus the
//! parallel sweep runtime at 1 vs N threads, and writes
//! `BENCH_kernels.json` — a `meta` provenance block (default backend, CPU
//! features) plus one record per measurement with `{kernel, backend,
//! ns_per_iter, ns_per_symbol, ns_per_point, threads, speedup}` —
//! to seed the perf trajectory. Backend-tier rows (`*_simd`, `*_f32`) time
//! the ported kernels through the explicit AVX2 / reduced-precision tiers;
//! `_simd` rows are checksum-gated against scalar and skipped on hosts
//! without SIMD support. `ns_per_symbol` normalizes frame-scaling
//! kernels (DFE, packet pipeline) by their payload symbol count and
//! `ns_per_point` normalizes sweep entries by their grid-point count, so
//! trajectories stay comparable if a PR changes the benchmark workload
//! size; both are `null` where they do not apply. The full schema contract
//! (consumed by `tools/perf_smoke.py` in CI) is documented in
//! `crates/bench/README.md`.
//!
//! Speedup is reference-ns / optimized-ns for kernel pairs, and
//! 1-thread-ns / N-thread-ns for the sweep (≈1.0 on a single-core host).
//!
//! Before timing, each reference/optimized pair is run once and its outputs
//! are checksummed; any divergence is reported and the process exits
//! nonzero, so CI can use this binary as a cheap bit-identity smoke test.
//! Set `BENCH_KERNELS_QUICK=1` for reduced repetitions (CI smoke mode).

use std::io::Write as _;
use std::time::Instant;

use retroturbo_bench::banner;
use retroturbo_coding::RsCode;
use retroturbo_core::training::{OfflineTraining, OnlineTrainer};
use retroturbo_core::{Equalizer, Modulator, PhyConfig, PreambleDetector, TagModel};
use retroturbo_dsp::backend::{self, C32};
use retroturbo_dsp::noise::NoiseSource;
use retroturbo_dsp::{Backend, Signal, C64};
use retroturbo_lcm::fingerprint::{relative_error, relative_error_with_energy};
use retroturbo_lcm::{FingerprintSet, Heterogeneity, LcParams, Panel, PanelKernel};
use retroturbo_runtime::with_threads;
use retroturbo_sim::experiments::field::fig16a_ber_vs_distance;
use retroturbo_sim::experiments::Effort;
use retroturbo_sim::{ImpairmentConfig, LinkBudget, LinkSimulator, Scene};

/// Minimum wall time per call, in nanoseconds, over `reps` timed batches of
/// `iters` calls each. The minimum is the noise floor: scheduler preemption
/// and frequency scaling only ever add time, so the fastest batch is the
/// best estimate of the kernel's true cost on a shared core.
fn time_ns<F: FnMut()>(iters: usize, reps: usize, mut f: F) -> f64 {
    // Warm-up.
    f();
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Time two variants of the same kernel with interleaved batches (A, B, A,
/// B, …) so slow drift in machine load hits both sides equally. Returns
/// `(ns_a, ns_b)` minima.
fn time_pair_ns<A: FnMut(), B: FnMut()>(
    iters: usize,
    reps: usize,
    mut a: A,
    mut b: B,
) -> (f64, f64) {
    a();
    b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            a();
        }
        best_a = best_a.min(t0.elapsed().as_nanos() as f64 / iters as f64);
        let t1 = Instant::now();
        for _ in 0..iters {
            b();
        }
        best_b = best_b.min(t1.elapsed().as_nanos() as f64 / iters as f64);
    }
    (best_a, best_b)
}

/// One `BENCH_kernels.json` row; see `crates/bench/README.md` for the
/// schema contract consumed by `tools/perf_smoke.py`.
struct Record {
    kernel: &'static str,
    /// Kernel backend tier this row ran on (`"scalar"`, `"simd"`, `"f32"`).
    backend: &'static str,
    ns_per_iter: f64,
    /// Per-payload-symbol normalization (`ns_per_iter / symbols`) for
    /// kernels whose work scales with a frame's payload; `None` (emitted as
    /// JSON `null`) for fixed-size kernels and sweeps.
    ns_per_symbol: Option<f64>,
    /// Per-grid-point normalization (`ns_per_iter / points`) for sweep
    /// entries, so trajectories survive grid-size changes; `None` (JSON
    /// `null`) for non-sweep kernels.
    ns_per_point: Option<f64>,
    threads: usize,
    speedup: f64,
}

/// FNV-1a over the bit patterns of a complex slice — the cross-variant
/// checksum CI compares to catch reference/optimized divergence.
fn checksum_c64(xs: &[C64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for z in xs {
        for b in [z.re.to_bits(), z.im.to_bits()] {
            h ^= b;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

/// FNV-1a over decided PQAM symbols — the DFE pairs must agree on every
/// decision (costs may differ in the last bits; decisions may not).
fn checksum_symbols(xs: &[retroturbo_core::PqamSymbol]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for s in xs {
        for b in [s.i as u64, s.q as u64] {
            h ^= b;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

fn main() {
    banner(
        "bench-kernels",
        "hot-kernel before/after timings -> BENCH_kernels.json",
    );
    // Pin the process-default backend to Scalar so every legacy row keeps
    // measuring exactly what it measured before the backend layer existed
    // (and stays comparable across the committed baselines). The SIMD / F32
    // rows below opt in per object via `with_backend`. A pre-set
    // `RETROTURBO_BACKEND` (CI matrix legs) wins over this pin.
    let forced = if std::env::var("RETROTURBO_BACKEND").is_ok() {
        Backend::detect()
    } else {
        let _ = Backend::force(Backend::Scalar);
        Backend::detect()
    };
    let simd_rows = backend::simd_available();
    if !simd_rows {
        eprintln!("# no SIMD support on this host: skipping simd-tier rows");
    }
    // Legacy rows run on whatever the process default resolved to — label
    // them honestly so a `RETROTURBO_BACKEND=simd` CI leg is distinguishable
    // from the scalar baseline in the archived JSON.
    let default_label = forced.label();
    // CI smoke mode: fewer repetitions, same pairs and checksums.
    let quick = std::env::var("BENCH_KERNELS_QUICK").is_ok();
    let reps = if quick { 3 } else { 9 };
    let mut records: Vec<Record> = Vec::new();
    let mut diverged: Vec<String> = Vec::new();

    // --- DFE: Gram-factorized scoring vs per-sample Rc-clone reference ----
    let cfg = {
        let mut c = PhyConfig::default_8kbps();
        c.preamble_slots = 24;
        c.training_rounds = 8;
        c
    };
    let params = LcParams::default();
    let model = TagModel::nominal(&cfg, &params);
    let m = Modulator::new(cfg);
    let bits: Vec<bool> = (0..512).map(|i| (i * 11) % 3 == 0).collect();
    let frame = m.modulate(&bits);
    let mut wave = model.render_levels(&frame.levels);
    NoiseSource::new(2).add_awgn(&mut wave, 0.01);
    let known = frame.levels[..frame.payload_start()].to_vec();
    let payload_syms = frame.payload_slots as f64;

    for (k, kernel_ref, kernel_opt, check) in [
        (
            16usize,
            "dfe_equalize_k16_reference",
            "dfe_equalize_k16_gram",
            "dfe_decisions_k16",
        ),
        (
            4,
            "dfe_equalize_k4_reference",
            "dfe_equalize_k4_gram",
            "dfe_decisions_k4",
        ),
    ] {
        let eq = Equalizer::new(cfg).with_branches(k);
        // Decision-identity gate: the factorized path must decide every
        // payload symbol exactly as the oracle does.
        let fast = eq.equalize(&wave, &model, &known, frame.payload_slots);
        let slow = eq.equalize_reference(&wave, &model, &known, frame.payload_slots);
        if checksum_symbols(&fast) != checksum_symbols(&slow) {
            diverged.push(check.into());
        }
        let (dfe_ref, dfe_new) = time_pair_ns(
            3,
            reps,
            || {
                std::hint::black_box(eq.equalize_reference(
                    &wave,
                    &model,
                    &known,
                    frame.payload_slots,
                ));
            },
            || {
                std::hint::black_box(eq.equalize(&wave, &model, &known, frame.payload_slots));
            },
        );
        records.push(Record {
            kernel: kernel_ref,
            backend: default_label,
            ns_per_iter: dfe_ref,
            ns_per_symbol: Some(dfe_ref / payload_syms),
            ns_per_point: None,
            threads: 1,
            speedup: 1.0,
        });
        records.push(Record {
            kernel: kernel_opt,
            backend: default_label,
            ns_per_iter: dfe_new,
            ns_per_symbol: Some(dfe_new / payload_syms),
            ns_per_point: None,
            threads: 1,
            speedup: dfe_ref / dfe_new,
        });
    }

    // --- DFE: explicit-SIMD lane scoring vs the scalar Gram path ----------
    // The Simd tier must decide every payload symbol bit-identically to the
    // scalar Gram path (which the loop above already proved against the
    // oracle), so the gate here is transitive to the reference.
    if simd_rows {
        let eq_s = Equalizer::new(cfg)
            .with_branches(16)
            .with_backend(Backend::Scalar);
        let eq_v = Equalizer::new(cfg)
            .with_branches(16)
            .with_backend(Backend::Simd);
        let a = eq_s.equalize(&wave, &model, &known, frame.payload_slots);
        let b = eq_v.equalize(&wave, &model, &known, frame.payload_slots);
        if checksum_symbols(&a) != checksum_symbols(&b) {
            diverged.push("dfe_decisions_k16_simd".into());
        }
        let (dfe_s, dfe_v) = time_pair_ns(
            3,
            reps,
            || {
                std::hint::black_box(eq_s.equalize(&wave, &model, &known, frame.payload_slots));
            },
            || {
                std::hint::black_box(eq_v.equalize(&wave, &model, &known, frame.payload_slots));
            },
        );
        records.push(Record {
            kernel: "dfe_equalize_k16_simd",
            backend: "simd",
            ns_per_iter: dfe_v,
            ns_per_symbol: Some(dfe_v / payload_syms),
            ns_per_point: None,
            threads: 1,
            speedup: dfe_s / dfe_v,
        });
    }

    // --- Fingerprint emulation error: precomputed vs per-call energy -----
    let set = FingerprintSet::collect(&params, 8, 0.5e-3, 40_000.0);
    let drive: Vec<bool> = (0..2000).map(|i| (i * 7) % 3 == 0).collect();
    let reference_wave = set.emulate_pixel(&drive);
    let ref_energy: f64 = reference_wave.iter().map(|y| y * y).sum();
    let probe = set.emulate_pixel(&drive);
    let (fp_ref, fp_new) = time_pair_ns(
        200,
        reps,
        || {
            std::hint::black_box(relative_error(&probe, &reference_wave));
        },
        || {
            std::hint::black_box(relative_error_with_energy(
                &probe,
                &reference_wave,
                ref_energy,
            ));
        },
    );
    records.push(Record {
        kernel: "fingerprint_relative_error_reference",
        backend: default_label,
        ns_per_iter: fp_ref,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "fingerprint_relative_error_precomputed",
        backend: default_label,
        ns_per_iter: fp_new,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: fp_ref / fp_new,
    });

    // --- Online training: precomputed normal equations vs full lstsq -----
    let offline = OfflineTraining::collect(
        &cfg,
        &params,
        &OfflineTraining::default_variants(&params),
        3,
    );
    let trainer = OnlineTrainer::new(cfg, &offline);
    let mut levels = Modulator::preamble_levels(&cfg);
    levels.extend(Modulator::training_levels(&cfg));
    let rx = model.render_levels(&levels);
    let (tr_ref, tr_new) = time_pair_ns(
        3,
        reps,
        || {
            std::hint::black_box(trainer.train_reference(&rx));
        },
        || {
            std::hint::black_box(trainer.train(&rx));
        },
    );
    records.push(Record {
        kernel: "online_training_reference",
        backend: default_label,
        ns_per_iter: tr_ref,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "online_training_precomputed",
        backend: default_label,
        ns_per_iter: tr_new,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: tr_ref / tr_new,
    });

    // --- Online training: SIMD Gram accumulation vs scalar ----------------
    // TagModel has no PartialEq; gating on the rendered response of the
    // trained model compares everything the receiver can observe.
    if simd_rows {
        let tr_v = OnlineTrainer::new(cfg, &offline).with_backend(Backend::Simd);
        let ma = trainer.train(&rx);
        let mb = tr_v.train(&rx);
        if checksum_c64(&ma.render_levels(&levels)) != checksum_c64(&mb.render_levels(&levels)) {
            diverged.push("online_training_simd".into());
        }
        let (tn_s, tn_v) = time_pair_ns(
            3,
            reps,
            || {
                std::hint::black_box(trainer.train(&rx));
            },
            || {
                std::hint::black_box(tr_v.train(&rx));
            },
        );
        records.push(Record {
            kernel: "online_training_simd",
            backend: "simd",
            ns_per_iter: tn_v,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: tn_s / tn_v,
        });
    }

    // --- Panel ODE: SoA kernel vs scalar reference loop -------------------
    // The pipeline's usage pattern on each side: the reference path clones
    // the pristine panel per packet; the SoA path restores a snapshot and
    // renders into a caller-provided buffer.
    let pristine = Panel::retroturbo(
        cfg.l_order,
        cfg.bits_per_module(),
        params,
        Heterogeneity::typical(),
        5,
    );
    let cmds = frame.drive_commands(&cfg);
    let n_wave = frame.total_slots() * cfg.samples_per_slot();
    let mut kernel = PanelKernel::from_panel(&pristine);
    let mut soa_out = vec![C64::default(); n_wave];

    let ref_wave = pristine
        .clone()
        .simulate_reference(&cmds, n_wave, cfg.fs)
        .into_samples();
    kernel.restore();
    kernel.simulate_into(&cmds, cfg.fs, &mut soa_out);
    if checksum_c64(&ref_wave) != checksum_c64(&soa_out) {
        diverged.push("panel_simulate".into());
    }

    let (panel_ref, panel_soa) = time_pair_ns(
        if quick { 1 } else { 3 },
        reps,
        || {
            let mut p = pristine.clone();
            std::hint::black_box(p.simulate_reference(&cmds, n_wave, cfg.fs));
        },
        || {
            kernel.restore();
            kernel.simulate_into(&cmds, cfg.fs, &mut soa_out);
            std::hint::black_box(&soa_out);
        },
    );
    records.push(Record {
        kernel: "panel_simulate_reference",
        backend: default_label,
        ns_per_iter: panel_ref,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "panel_simulate_soa",
        backend: default_label,
        ns_per_iter: panel_soa,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: panel_ref / panel_soa,
    });

    // --- Panel ODE: explicit backend tiers over the same drive ------------
    if simd_rows {
        let mut kv = PanelKernel::from_panel(&pristine).with_backend(Backend::Simd);
        let mut v_out = vec![C64::default(); n_wave];
        kv.restore();
        kv.simulate_into(&cmds, cfg.fs, &mut v_out);
        kernel.restore();
        kernel.simulate_into(&cmds, cfg.fs, &mut soa_out);
        if checksum_c64(&soa_out) != checksum_c64(&v_out) {
            diverged.push("panel_ode_simd".into());
        }
        let (p_s, p_v) = time_pair_ns(
            if quick { 1 } else { 3 },
            reps,
            || {
                kernel.restore();
                kernel.simulate_into(&cmds, cfg.fs, &mut soa_out);
                std::hint::black_box(&soa_out);
            },
            || {
                kv.restore();
                kv.simulate_into(&cmds, cfg.fs, &mut v_out);
                std::hint::black_box(&v_out);
            },
        );
        records.push(Record {
            kernel: "panel_ode_simd",
            backend: "simd",
            ns_per_iter: p_v,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: p_s / p_v,
        });
    }
    {
        // F32 tier: reduced precision by design, so no bit gate here — its
        // accuracy contract is the end-to-end BER-delta test in the sim
        // crate. Speedup is against the scalar SoA kernel timed above.
        let mut k32 = PanelKernel::from_panel(&pristine).with_backend(Backend::F32);
        let mut out32 = vec![C64::default(); n_wave];
        let p32 = time_ns(if quick { 1 } else { 3 }, reps, || {
            k32.restore();
            k32.simulate_into(&cmds, cfg.fs, &mut out32);
            std::hint::black_box(&out32);
        });
        records.push(Record {
            kernel: "panel_ode_f32",
            backend: "f32",
            ns_per_iter: p32,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: panel_soa / p32,
        });
    }

    // --- Preamble search: precomputed Gram vs per-offset lstsq ------------
    let detector = PreambleDetector::new(&cfg, &model);
    let spt = cfg.samples_per_slot();
    let rx_sig = Signal::new(wave.clone(), cfg.fs);
    let search_to = 2 * spt;
    {
        let a = detector.detect_in_reference(&rx_sig, 0, search_to);
        let b = detector.detect_in(&rx_sig, 0, search_to);
        let same = match (&a, &b) {
            (Some(x), Some(y)) => x.offset == y.offset && x.score.to_bits() == y.score.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if !same {
            diverged.push("preamble_search".into());
        }
    }
    let (pre_ref, pre_gram) = time_pair_ns(
        if quick { 1 } else { 3 },
        reps,
        || {
            std::hint::black_box(detector.detect_in_reference(&rx_sig, 0, search_to));
        },
        || {
            std::hint::black_box(detector.detect_in(&rx_sig, 0, search_to));
        },
    );
    records.push(Record {
        kernel: "preamble_search_reference",
        backend: default_label,
        ns_per_iter: pre_ref,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "preamble_search_gram",
        backend: default_label,
        ns_per_iter: pre_gram,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: pre_ref / pre_gram,
    });

    // --- Gram fit: backend tiers of the preamble search -------------------
    // The preamble search is a pure loop over `WidelyLinearGram::fit`, so
    // timing `detect_in` per tier times the fused fit + solve kernel.
    if simd_rows {
        let det_s = PreambleDetector::new(&cfg, &model).with_backend(Backend::Scalar);
        let det_v = PreambleDetector::new(&cfg, &model).with_backend(Backend::Simd);
        let a = det_s.detect_in(&rx_sig, 0, search_to);
        let b = det_v.detect_in(&rx_sig, 0, search_to);
        let same = match (&a, &b) {
            (Some(x), Some(y)) => x.offset == y.offset && x.score.to_bits() == y.score.to_bits(),
            (None, None) => true,
            _ => false,
        };
        if !same {
            diverged.push("gram_fit_simd".into());
        }
        let (g_s, g_v) = time_pair_ns(
            if quick { 1 } else { 3 },
            reps,
            || {
                std::hint::black_box(det_s.detect_in(&rx_sig, 0, search_to));
            },
            || {
                std::hint::black_box(det_v.detect_in(&rx_sig, 0, search_to));
            },
        );
        records.push(Record {
            kernel: "gram_fit_simd",
            backend: "simd",
            ns_per_iter: g_v,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: g_s / g_v,
        });
    }
    {
        // F32 fit: must still land on the same sample offset (a decision,
        // not a bit pattern); the score itself may drift in low bits.
        let det32 = PreambleDetector::new(&cfg, &model).with_backend(Backend::F32);
        let a = detector.detect_in(&rx_sig, 0, search_to);
        let b = det32.detect_in(&rx_sig, 0, search_to);
        let same_offset = match (&a, &b) {
            (Some(x), Some(y)) => x.offset == y.offset,
            (None, None) => true,
            _ => false,
        };
        if !same_offset {
            diverged.push("gram_fit_f32_offset".into());
        }
        let g32 = time_ns(if quick { 1 } else { 3 }, reps, || {
            std::hint::black_box(det32.detect_in(&rx_sig, 0, search_to));
        });
        records.push(Record {
            kernel: "gram_fit_f32",
            backend: "f32",
            ns_per_iter: g32,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: pre_gram / g32,
        });
    }

    // --- Filter chain: FIR + biquad front end, per backend tier -----------
    // Direct `backend::*` calls with an explicit tier (the `Fir`/`Biquad`
    // wrappers dispatch on the pinned process default). The chain shape
    // mirrors the reader front end: one narrow FIR pass then one biquad
    // smoothing pass over the same frame; the decimator is timed separately
    // below because the F32 tier has no decimate variant.
    {
        use retroturbo_dsp::filter::{Biquad, Fir};
        let fir = Fir::lowpass(4_000.0, cfg.fs, 63);
        let coeffs = Biquad::lowpass(3_000.0, 0.707, cfg.fs).coeffs();
        let d = fir.group_delay();
        let n = wave.len();
        let mut y_fir = vec![C64::default(); n];
        let mut y_bq = vec![C64::default(); n];
        backend::fir_filter_into(Backend::Scalar, fir.taps(), &wave, d, &mut y_fir);
        backend::biquad_filter_into(Backend::Scalar, &coeffs, &wave, &mut y_bq);
        let cs_fir = checksum_c64(&y_fir);
        let cs_bq = checksum_c64(&y_bq);
        let chain_scalar = time_ns(if quick { 2 } else { 5 }, reps, || {
            backend::fir_filter_into(Backend::Scalar, fir.taps(), &wave, d, &mut y_fir);
            backend::biquad_filter_into(Backend::Scalar, &coeffs, &wave, &mut y_bq);
            std::hint::black_box((&y_fir, &y_bq));
        });
        records.push(Record {
            kernel: "filter_chain",
            backend: "scalar",
            ns_per_iter: chain_scalar,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: 1.0,
        });
        if simd_rows {
            backend::fir_filter_into(Backend::Simd, fir.taps(), &wave, d, &mut y_fir);
            backend::biquad_filter_into(Backend::Simd, &coeffs, &wave, &mut y_bq);
            if checksum_c64(&y_fir) != cs_fir || checksum_c64(&y_bq) != cs_bq {
                diverged.push("filter_chain_simd".into());
            }
            let chain_simd = time_ns(if quick { 2 } else { 5 }, reps, || {
                backend::fir_filter_into(Backend::Simd, fir.taps(), &wave, d, &mut y_fir);
                backend::biquad_filter_into(Backend::Simd, &coeffs, &wave, &mut y_bq);
                std::hint::black_box((&y_fir, &y_bq));
            });
            records.push(Record {
                kernel: "filter_chain_simd",
                backend: "simd",
                ns_per_iter: chain_simd,
                ns_per_symbol: None,
                ns_per_point: None,
                threads: 1,
                speedup: chain_scalar / chain_simd,
            });
        }
        {
            let taps32 = fir.taps_f32();
            let mut x32: Vec<C32> = Vec::new();
            backend::narrow_c32(&wave, &mut x32);
            let mut y32_fir = vec![C32::default(); n];
            let mut y32_bq = vec![C32::default(); n];
            let chain_f32 = time_ns(if quick { 2 } else { 5 }, reps, || {
                backend::fir_filter_f32_into(&taps32, &x32, d, &mut y32_fir);
                backend::biquad_filter_f32_into(&coeffs, &x32, &mut y32_bq);
                std::hint::black_box((&y32_fir, &y32_bq));
            });
            records.push(Record {
                kernel: "filter_chain_f32",
                backend: "f32",
                ns_per_iter: chain_f32,
                ns_per_symbol: None,
                ns_per_point: None,
                threads: 1,
                speedup: chain_scalar / chain_f32,
            });
        }
        // Boxcar decimator, factor 4: scalar vs SIMD, bit-gated.
        let mut y_dec = vec![C64::default(); n / 4];
        backend::decimate_into(Backend::Scalar, &wave, 4, &mut y_dec);
        let cs_dec = checksum_c64(&y_dec);
        let dec_scalar = time_ns(if quick { 5 } else { 20 }, reps, || {
            backend::decimate_into(Backend::Scalar, &wave, 4, &mut y_dec);
            std::hint::black_box(&y_dec);
        });
        records.push(Record {
            kernel: "decimate_boxcar",
            backend: "scalar",
            ns_per_iter: dec_scalar,
            ns_per_symbol: None,
            ns_per_point: None,
            threads: 1,
            speedup: 1.0,
        });
        if simd_rows {
            backend::decimate_into(Backend::Simd, &wave, 4, &mut y_dec);
            if checksum_c64(&y_dec) != cs_dec {
                diverged.push("decimate_boxcar_simd".into());
            }
            let dec_simd = time_ns(if quick { 5 } else { 20 }, reps, || {
                backend::decimate_into(Backend::Simd, &wave, 4, &mut y_dec);
                std::hint::black_box(&y_dec);
            });
            records.push(Record {
                kernel: "decimate_boxcar_simd",
                backend: "simd",
                ns_per_iter: dec_simd,
                ns_per_symbol: None,
                ns_per_point: None,
                threads: 1,
                speedup: dec_scalar / dec_simd,
            });
        }
    }

    // --- Packet pipeline: fused allocation-free vs allocating reference ---
    let sim = LinkSimulator::new(cfg, LinkBudget::fov10(), Scene::default_at(3.0), 9);
    let mut scratch = sim.make_scratch();
    let pkt_bytes = if quick { 8 } else { 32 };
    let pkt_bits: Vec<bool> = (0..pkt_bytes * 8).map(|i| (i * 13) % 5 < 2).collect();
    {
        // Waveform-level checksum (decode equality follows from it) plus
        // outcome equality.
        let fused_sig = sim.synth_rx(&mut scratch, &pkt_bits, 1);
        let ref_sig = sim.synth_rx_reference(&pkt_bits, 1);
        if checksum_c64(fused_sig.samples()) != checksum_c64(ref_sig.samples()) {
            diverged.push("packet_waveform".into());
        }
        scratch.give_back(fused_sig.into_samples());
        let of = sim.run_packet_with(&mut scratch, &pkt_bits, 2);
        let or = sim.run_packet_reference(&pkt_bits, 2);
        if (of.bit_errors, of.bits, of.detected) != (or.bit_errors, or.bits, or.detected) {
            diverged.push("packet_outcome".into());
        }
    }
    let pkt_syms = (pkt_bits.len() / cfg.bits_per_symbol()) as f64;
    let (pkt_ref, pkt_fused) = time_pair_ns(
        1,
        reps,
        || {
            std::hint::black_box(sim.run_packet_reference(&pkt_bits, 3));
        },
        || {
            std::hint::black_box(sim.run_packet_with(&mut scratch, &pkt_bits, 3));
        },
    );
    records.push(Record {
        kernel: "run_packet_reference",
        backend: default_label,
        ns_per_iter: pkt_ref,
        ns_per_symbol: Some(pkt_ref / pkt_syms),
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "run_packet_fused",
        backend: default_label,
        ns_per_iter: pkt_fused,
        ns_per_symbol: Some(pkt_fused / pkt_syms),
        ns_per_point: None,
        threads: 1,
        speedup: pkt_ref / pkt_fused,
    });

    // --- Packet pipeline: explicit backend tiers --------------------------
    // Fresh simulators per tier (`with_backend` rewires the receiver and the
    // panel scratch factory); the scalar `sim` above is the baseline.
    let o_scalar = sim.run_packet_with(&mut scratch, &pkt_bits, 2);
    if simd_rows {
        let sim_v = LinkSimulator::new(cfg, LinkBudget::fov10(), Scene::default_at(3.0), 9)
            .with_backend(Backend::Simd);
        let mut scr_v = sim_v.make_scratch();
        let sv = sim_v.synth_rx(&mut scr_v, &pkt_bits, 1);
        let ss = sim.synth_rx(&mut scratch, &pkt_bits, 1);
        if checksum_c64(sv.samples()) != checksum_c64(ss.samples()) {
            diverged.push("run_packet_simd_waveform".into());
        }
        scr_v.give_back(sv.into_samples());
        scratch.give_back(ss.into_samples());
        let ov = sim_v.run_packet_with(&mut scr_v, &pkt_bits, 2);
        if (ov.bit_errors, ov.bits, ov.detected)
            != (o_scalar.bit_errors, o_scalar.bits, o_scalar.detected)
        {
            diverged.push("run_packet_simd_outcome".into());
        }
        let (pk_s, pk_v) = time_pair_ns(
            1,
            reps,
            || {
                std::hint::black_box(sim.run_packet_with(&mut scratch, &pkt_bits, 3));
            },
            || {
                std::hint::black_box(sim_v.run_packet_with(&mut scr_v, &pkt_bits, 3));
            },
        );
        records.push(Record {
            kernel: "run_packet_simd",
            backend: "simd",
            ns_per_iter: pk_v,
            ns_per_symbol: Some(pk_v / pkt_syms),
            ns_per_point: None,
            threads: 1,
            speedup: pk_s / pk_v,
        });
    }
    {
        // F32 tier: different waveform bits by design; the gate here is the
        // decision level (the packet must still decode), with the measured
        // BER-delta bound enforced by the sim crate's fig16a test.
        let sim_32 = LinkSimulator::new(cfg, LinkBudget::fov10(), Scene::default_at(3.0), 9)
            .with_backend(Backend::F32);
        let mut scr_32 = sim_32.make_scratch();
        let o32 = sim_32.run_packet_with(&mut scr_32, &pkt_bits, 2);
        if o32.detected != o_scalar.detected {
            diverged.push("run_packet_f32_detect".into());
        }
        let pk_32 = time_ns(1, reps, || {
            std::hint::black_box(sim_32.run_packet_with(&mut scr_32, &pkt_bits, 3));
        });
        records.push(Record {
            kernel: "run_packet_f32",
            backend: "f32",
            ns_per_iter: pk_32,
            ns_per_symbol: Some(pk_32 / pkt_syms),
            ns_per_point: None,
            threads: 1,
            speedup: pkt_fused / pk_32,
        });
    }

    // --- Waveform synthesis: live render vs cached re-noise (§7.3) -------
    // The sweep engine's core trade: a cache hit replaces the whole
    // per-packet synthesis (panel ODE + channel + fresh AWGN) with a copy of
    // the cached clean wave, re-applied channel, and σ-scaled cached unit
    // normals — bit-identical by construction, and gated here by checksum.
    {
        let clean = sim.render_clean(&mut scratch, &pkt_bits);
        let unit_noise = sim.packet_unit_noise(clean.len(), 5);
        let live_sig = sim.synth_rx(&mut scratch, &pkt_bits, 5);
        let renoise_sig = sim.synth_rx_renoise(&mut scratch, &clean, &unit_noise, 5);
        if checksum_c64(live_sig.samples()) != checksum_c64(renoise_sig.samples()) {
            diverged.push("waveform_renoise".into());
        }
        scratch.give_back(live_sig.into_samples());
        scratch.give_back(renoise_sig.into_samples());
        let mut renoise_scratch = sim.make_scratch();
        let (render_ns, renoise_ns) = time_pair_ns(
            if quick { 2 } else { 5 },
            reps,
            || {
                let s = sim.synth_rx(&mut scratch, &pkt_bits, 5);
                std::hint::black_box(&s);
                scratch.give_back(s.into_samples());
            },
            || {
                let s = sim.synth_rx_renoise(&mut renoise_scratch, &clean, &unit_noise, 5);
                std::hint::black_box(&s);
                renoise_scratch.give_back(s.into_samples());
            },
        );
        records.push(Record {
            kernel: "waveform_render_reference",
            backend: default_label,
            ns_per_iter: render_ns,
            ns_per_symbol: Some(render_ns / pkt_syms),
            ns_per_point: None,
            threads: 1,
            speedup: 1.0,
        });
        records.push(Record {
            kernel: "waveform_renoise_cached",
            backend: default_label,
            ns_per_iter: renoise_ns,
            ns_per_symbol: Some(renoise_ns / pkt_syms),
            ns_per_point: None,
            threads: 1,
            speedup: render_ns / renoise_ns,
        });
    }

    // --- RS decode: errors-only vs errors-and-erasures (same damage) ------
    // Ten damaged symbols, all flagged: both decoders must recover the same
    // message (a cheap cross-check of the errata path), and the timing pair
    // shows what the erasure machinery costs per block.
    let rs = RsCode::new(255, 223);
    let msg: Vec<u8> = (0..223).map(|i| (i as u8).wrapping_mul(31)).collect();
    let mut damaged = rs.encode(&msg);
    let flagged: Vec<usize> = (0..10).map(|k| k * 19).collect();
    for &p in &flagged {
        damaged[p] ^= 0xA5;
    }
    {
        let plain = rs.decode(&damaged).expect("errors-only decode");
        let errata = rs
            .decode_with_erasures(&damaged, &flagged)
            .expect("errata decode");
        if plain.0 != errata.msg || plain.1 + errata.errors_corrected + errata.erasures_filled != 20
        {
            diverged.push("rs_errata_decode".into());
        }
    }
    let (rs_plain, rs_errata) = time_pair_ns(
        if quick { 20 } else { 100 },
        reps,
        || {
            std::hint::black_box(rs.decode(&damaged).unwrap());
        },
        || {
            std::hint::black_box(rs.decode_with_erasures(&damaged, &flagged).unwrap());
        },
    );
    records.push(Record {
        kernel: "rs_decode_errors_only",
        backend: default_label,
        ns_per_iter: rs_plain,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "rs_decode_errata",
        backend: default_label,
        ns_per_iter: rs_errata,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: rs_plain / rs_errata,
    });

    // --- Impairment chain: full fault stack over one rendered frame -------
    let imp = ImpairmentConfig {
        clock_ppm: 80.0,
        adc_bits: Some(8),
        adc_full_scale: 1.5,
        blockage_duty: 0.05,
        blockage_len: 150,
        ramp_end_snr_db: 25.0,
        ..ImpairmentConfig::none()
    };
    let imp_sig = Signal::new(model.render_levels(&frame.levels), cfg.fs);
    {
        // Determinism check doubles as the identity check.
        let (a, _) = imp.apply(&imp_sig, 11);
        let (b, _) = imp.apply(&imp_sig, 11);
        let (id, _) = ImpairmentConfig::none().apply(&imp_sig, 11);
        if checksum_c64(a.samples()) != checksum_c64(b.samples())
            || checksum_c64(id.samples()) != checksum_c64(imp_sig.samples())
        {
            diverged.push("impairment_chain".into());
        }
    }
    let imp_ns = time_ns(if quick { 5 } else { 20 }, reps, || {
        std::hint::black_box(imp.apply(&imp_sig, 11));
    });
    records.push(Record {
        kernel: "impairment_chain_full",
        backend: default_label,
        ns_per_iter: imp_ns,
        ns_per_symbol: None,
        ns_per_point: None,
        threads: 1,
        speedup: 1.0,
    });

    // --- Parallel sweep runtime: fig16a at 1 vs N threads -----------------
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep = |threads: usize| {
        time_ns(1, if quick { 1 } else { 3 }, || {
            with_threads(threads, || {
                std::hint::black_box(fig16a_ber_vs_distance(&[4.0, 9.0], Effort::Quick, 7));
            });
        })
    };
    // 2 distances × 2 rate curves.
    let sweep_points = 4.0;
    let sweep_1 = sweep(1);
    records.push(Record {
        kernel: "sweep_fig16a_quick",
        backend: default_label,
        ns_per_iter: sweep_1,
        ns_per_symbol: None,
        ns_per_point: Some(sweep_1 / sweep_points),
        threads: 1,
        speedup: 1.0,
    });
    if n_threads > 1 {
        let sweep_n = sweep(n_threads);
        records.push(Record {
            kernel: "sweep_fig16a_quick",
            backend: default_label,
            ns_per_iter: sweep_n,
            ns_per_symbol: None,
            ns_per_point: Some(sweep_n / sweep_points),
            threads: n_threads,
            speedup: sweep_1 / sweep_n,
        });
    } else {
        eprintln!("# single-core host: skipping multi-thread sweep measurement");
    }

    // --- Emit ------------------------------------------------------------
    // `{"meta": {...}, "kernels": [...]}`: the meta block records which
    // backend the legacy rows ran on and what the host CPU offered, so
    // archived baselines from different hosts/legs stay attributable.
    let mut json = String::from("{\n  \"meta\": {\n");
    json.push_str(&format!("    \"default_backend\": \"{default_label}\",\n"));
    json.push_str(&format!("    \"simd_available\": {simd_rows},\n"));
    json.push_str("    \"cpu_features\": {");
    let feats = backend::cpu_features();
    for (i, (name, on)) in feats.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {on}{}",
            if i + 1 < feats.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"quick\": {quick}\n  }},\n  \"kernels\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        let per_sym = match r.ns_per_symbol {
            Some(v) => format!("{v:.1}"),
            None => "null".into(),
        };
        let per_point = match r.ns_per_point {
            Some(v) => format!("{v:.1}"),
            None => "null".into(),
        };
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"ns_per_iter\": {:.1}, \"ns_per_symbol\": {}, \"ns_per_point\": {}, \"threads\": {}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.backend,
            r.ns_per_iter,
            per_sym,
            per_point,
            r.threads,
            r.speedup,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_kernels.json");
    eprintln!("# wrote {path}");
    print!("{json}");

    if !diverged.is_empty() {
        eprintln!("# FAIL: reference/optimized checksum divergence: {diverged:?}");
        std::process::exit(1);
    }
}
