//! Machine-readable kernel benchmark: times the three hot kernels optimized
//! by the perf pass (DFE branch extension, fingerprint emulation error, the
//! online-training solve) against their retained reference implementations,
//! plus the parallel sweep runtime at 1 vs N threads, and writes
//! `BENCH_kernels.json` — one record per measurement with
//! `{kernel, ns_per_iter, threads, speedup}` — to seed the perf trajectory.
//!
//! Speedup is reference-ns / optimized-ns for kernel pairs, and
//! 1-thread-ns / N-thread-ns for the sweep (≈1.0 on a single-core host).

use std::io::Write as _;
use std::time::Instant;

use retroturbo_bench::banner;
use retroturbo_core::training::{OfflineTraining, OnlineTrainer};
use retroturbo_core::{Equalizer, Modulator, PhyConfig, TagModel};
use retroturbo_dsp::noise::NoiseSource;
use retroturbo_lcm::fingerprint::{relative_error, relative_error_with_energy};
use retroturbo_lcm::{FingerprintSet, LcParams};
use retroturbo_runtime::with_threads;
use retroturbo_sim::experiments::field::fig16a_ber_vs_distance;
use retroturbo_sim::experiments::Effort;

/// Minimum wall time per call, in nanoseconds, over `reps` timed batches of
/// `iters` calls each. The minimum is the noise floor: scheduler preemption
/// and frequency scaling only ever add time, so the fastest batch is the
/// best estimate of the kernel's true cost on a shared core.
fn time_ns<F: FnMut()>(iters: usize, reps: usize, mut f: F) -> f64 {
    // Warm-up.
    f();
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Time two variants of the same kernel with interleaved batches (A, B, A,
/// B, …) so slow drift in machine load hits both sides equally. Returns
/// `(ns_a, ns_b)` minima.
fn time_pair_ns<A: FnMut(), B: FnMut()>(
    iters: usize,
    reps: usize,
    mut a: A,
    mut b: B,
) -> (f64, f64) {
    a();
    b();
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..iters {
            a();
        }
        best_a = best_a.min(t0.elapsed().as_nanos() as f64 / iters as f64);
        let t1 = Instant::now();
        for _ in 0..iters {
            b();
        }
        best_b = best_b.min(t1.elapsed().as_nanos() as f64 / iters as f64);
    }
    (best_a, best_b)
}

struct Record {
    kernel: &'static str,
    ns_per_iter: f64,
    threads: usize,
    speedup: f64,
}

fn main() {
    banner(
        "bench-kernels",
        "hot-kernel before/after timings -> BENCH_kernels.json",
    );
    let mut records: Vec<Record> = Vec::new();

    // --- DFE: arena traceback vs Rc-clone reference -----------------------
    let cfg = {
        let mut c = PhyConfig::default_8kbps();
        c.preamble_slots = 24;
        c.training_rounds = 8;
        c
    };
    let params = LcParams::default();
    let model = TagModel::nominal(&cfg, &params);
    let m = Modulator::new(cfg);
    let bits: Vec<bool> = (0..512).map(|i| (i * 11) % 3 == 0).collect();
    let frame = m.modulate(&bits);
    let mut wave = model.render_levels(&frame.levels);
    NoiseSource::new(2).add_awgn(&mut wave, 0.01);
    let known = frame.levels[..frame.payload_start()].to_vec();
    let eq = Equalizer::new(cfg).with_branches(16);

    let (dfe_ref, dfe_new) = time_pair_ns(
        3,
        9,
        || {
            std::hint::black_box(eq.equalize_reference(&wave, &model, &known, frame.payload_slots));
        },
        || {
            std::hint::black_box(eq.equalize(&wave, &model, &known, frame.payload_slots));
        },
    );
    records.push(Record {
        kernel: "dfe_equalize_k16_reference",
        ns_per_iter: dfe_ref,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "dfe_equalize_k16_arena",
        ns_per_iter: dfe_new,
        threads: 1,
        speedup: dfe_ref / dfe_new,
    });

    // --- Fingerprint emulation error: precomputed vs per-call energy -----
    let set = FingerprintSet::collect(&params, 8, 0.5e-3, 40_000.0);
    let drive: Vec<bool> = (0..2000).map(|i| (i * 7) % 3 == 0).collect();
    let reference_wave = set.emulate_pixel(&drive);
    let ref_energy: f64 = reference_wave.iter().map(|y| y * y).sum();
    let probe = set.emulate_pixel(&drive);
    let (fp_ref, fp_new) = time_pair_ns(
        200,
        9,
        || {
            std::hint::black_box(relative_error(&probe, &reference_wave));
        },
        || {
            std::hint::black_box(relative_error_with_energy(
                &probe,
                &reference_wave,
                ref_energy,
            ));
        },
    );
    records.push(Record {
        kernel: "fingerprint_relative_error_reference",
        ns_per_iter: fp_ref,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "fingerprint_relative_error_precomputed",
        ns_per_iter: fp_new,
        threads: 1,
        speedup: fp_ref / fp_new,
    });

    // --- Online training: precomputed normal equations vs full lstsq -----
    let offline = OfflineTraining::collect(
        &cfg,
        &params,
        &OfflineTraining::default_variants(&params),
        3,
    );
    let trainer = OnlineTrainer::new(cfg, &offline);
    let mut levels = Modulator::preamble_levels(&cfg);
    levels.extend(Modulator::training_levels(&cfg));
    let rx = model.render_levels(&levels);
    let (tr_ref, tr_new) = time_pair_ns(
        3,
        9,
        || {
            std::hint::black_box(trainer.train_reference(&rx));
        },
        || {
            std::hint::black_box(trainer.train(&rx));
        },
    );
    records.push(Record {
        kernel: "online_training_reference",
        ns_per_iter: tr_ref,
        threads: 1,
        speedup: 1.0,
    });
    records.push(Record {
        kernel: "online_training_precomputed",
        ns_per_iter: tr_new,
        threads: 1,
        speedup: tr_ref / tr_new,
    });

    // --- Parallel sweep runtime: fig16a at 1 vs N threads -----------------
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep = |threads: usize| {
        time_ns(1, 3, || {
            with_threads(threads, || {
                std::hint::black_box(fig16a_ber_vs_distance(&[4.0, 9.0], Effort::Quick, 7));
            });
        })
    };
    let sweep_1 = sweep(1);
    records.push(Record {
        kernel: "sweep_fig16a_quick",
        ns_per_iter: sweep_1,
        threads: 1,
        speedup: 1.0,
    });
    if n_threads > 1 {
        let sweep_n = sweep(n_threads);
        records.push(Record {
            kernel: "sweep_fig16a_quick",
            ns_per_iter: sweep_n,
            threads: n_threads,
            speedup: sweep_1 / sweep_n,
        });
    } else {
        eprintln!("# single-core host: skipping multi-thread sweep measurement");
    }

    // --- Emit ------------------------------------------------------------
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"kernel\": \"{}\", \"ns_per_iter\": {:.1}, \"threads\": {}, \"speedup\": {:.3}}}{}\n",
            r.kernel,
            r.ns_per_iter,
            r.threads,
            r.speedup,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");

    let path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| "BENCH_kernels.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_kernels.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_kernels.json");
    eprintln!("# wrote {path}");
    print!("{json}");
}
