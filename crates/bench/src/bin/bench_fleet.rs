//! Machine-readable multi-tag fleet benchmark: runs the interference-aware
//! MAC harness (`retroturbo_sim::fleet`) over thousands of deterministic
//! tag↔reader sessions and writes `BENCH_fleet.json` — a `meta` provenance
//! block plus one record per fleet size with `{tags, sessions,
//! sessions_per_sec, sum_goodput_p50_bps, sum_goodput_p90_bps,
//! sum_goodput_p99_bps, fairness_p10, fairness_p50, latency_p50_s,
//! latency_p99_s, delivery_rate, mean_attempts, equivalent}`. The schema
//! contract (consumed by `tools/perf_smoke.py` in CI) is documented in
//! `crates/bench/README.md`.
//!
//! Every fleet size is run at 1, 2 and 8 worker threads and the three
//! `FleetReport::canon()` fingerprints are byte-compared: any divergence
//! flips `equivalent` to false and the process exits nonzero, so CI can use
//! this binary as a determinism smoke test in the same way the other bench
//! bins gate on their scalar oracles. Throughput is sessions over wall time
//! at 8 threads.
//!
//! Set `BENCH_FLEET_QUICK=1` for reduced session counts (CI smoke mode);
//! `BENCH_FLEET_OUT` overrides the output path.

use std::io::Write as _;
use std::time::Instant;

use retroturbo_bench::banner;
use retroturbo_dsp::backend;
use retroturbo_runtime::with_threads;
use retroturbo_sim::fleet::{run_fleet, FleetConfig, FleetReport};

const RUN_SEED: u64 = 0xF1EE;

struct Row {
    report: FleetReport,
    sessions_per_sec: f64,
    equivalent: bool,
}

/// Run one fleet size at 1/2/8 worker threads, gate the three canonical
/// fingerprints against each other, and time the 8-thread run.
fn run_size(n_tags: usize, sessions: usize) -> Row {
    let cfg = FleetConfig::new(n_tags);
    let t1 = with_threads(1, || run_fleet(&cfg, sessions, RUN_SEED));
    let t2 = with_threads(2, || run_fleet(&cfg, sessions, RUN_SEED));
    let t0 = Instant::now();
    let t8 = with_threads(8, || run_fleet(&cfg, sessions, RUN_SEED));
    let elapsed = t0.elapsed().as_secs_f64();

    let equivalent = t1.canon() == t2.canon() && t1.canon() == t8.canon();
    if !equivalent {
        eprintln!("# MISMATCH fleet@{n_tags}: thread counts disagree");
        eprintln!("#   t1: {}", t1.canon().trim_end());
        eprintln!("#   t2: {}", t2.canon().trim_end());
        eprintln!("#   t8: {}", t8.canon().trim_end());
    }
    Row {
        report: t8,
        sessions_per_sec: sessions as f64 / elapsed,
        equivalent,
    }
}

fn main() {
    banner(
        "bench-fleet",
        "multi-tag fleet goodput/fairness percentiles -> BENCH_fleet.json",
    );
    let quick = std::env::var("BENCH_FLEET_QUICK").is_ok();
    let sessions: usize = if quick { 48 } else { 1000 };

    let rows: Vec<Row> = [2usize, 4, 8]
        .iter()
        .map(|&n| run_size(n, sessions))
        .collect();

    let mut json = String::from("{\n  \"meta\": {\n");
    json.push_str(&format!(
        "    \"default_backend\": \"{}\",\n",
        retroturbo_dsp::Backend::detect().label()
    ));
    json.push_str(&format!(
        "    \"simd_available\": {},\n",
        backend::simd_available()
    ));
    json.push_str("    \"cpu_features\": {");
    let feats = backend::cpu_features();
    for (i, (name, on)) in feats.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {on}{}",
            if i + 1 < feats.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!("    \"quick\": {quick}\n  }},\n  \"fleet\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        let rep = &r.report;
        json.push_str(&format!(
            "    {{\"tags\": {}, \"sessions\": {}, \"sessions_per_sec\": {:.1}, \"sum_goodput_p50_bps\": {:.1}, \"sum_goodput_p90_bps\": {:.1}, \"sum_goodput_p99_bps\": {:.1}, \"fairness_p10\": {:.4}, \"fairness_p50\": {:.4}, \"latency_p50_s\": {:.4}, \"latency_p99_s\": {:.4}, \"delivery_rate\": {:.4}, \"mean_attempts\": {:.3}, \"equivalent\": {}}}{}\n",
            rep.tags,
            rep.sessions,
            r.sessions_per_sec,
            rep.sum_goodput_p50_bps,
            rep.sum_goodput_p90_bps,
            rep.sum_goodput_p99_bps,
            rep.fairness_p10,
            rep.fairness_p50,
            rep.latency_p50_s,
            rep.latency_p99_s,
            rep.delivery_rate,
            rep.mean_attempts,
            r.equivalent,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_fleet.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_fleet.json");
    eprintln!("# wrote {path}");
    print!("{json}");

    if rows.iter().any(|r| !r.equivalent) {
        eprintln!("# FAIL: fleet aggregate diverged across thread counts");
        std::process::exit(1);
    }
}
