//! Ablation: what each channel-training stage buys against a heterogeneous
//! panel (nominal model → KL-mixture fit → + per-class refinement).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::ablation::training_stages;

fn main() {
    banner(
        "ablation-training",
        "training stages vs module heterogeneity (45 dB)",
    );
    let rows = training_stages(45.0, 6, 4);
    header(&["stage", "ber"]);
    for r in &rows {
        println!("{}\t{}", r.stage, fmt(r.ber));
    }
}
