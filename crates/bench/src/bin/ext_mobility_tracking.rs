//! Extension (§8 "Mobility Support"): BER under in-packet roll drift with
//! and without decision-directed channel tracking.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::mobility::drift_sweep;

fn main() {
    banner(
        "ext-mobility",
        "in-packet roll drift: static one-shot correction vs decision-directed tracking",
    );
    let pts = drift_sweep(&[0.0, 50.0, 100.0, 150.0, 250.0, 400.0], 40.0, 4, 24, 1);
    header(&["roll_rate_dps", "mode", "ber"]);
    for p in &pts {
        println!("{}\t{}\t{}", fmt(p.roll_rate_dps), p.mode, fmt(p.ber));
    }
    eprintln!("# the paper leaves mobility as future work (§8); tracking is our implementation");
}
