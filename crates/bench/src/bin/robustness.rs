//! Robustness sweep: BER / FER / goodput and the errors-and-erasures decode
//! margin along each impairment axis (clock ppm, ADC bits, blockage duty,
//! mid-frame SNR ramp), TSV to stdout plus `BENCH_robustness.json` for the
//! CI artifact (override the path with `BENCH_ROBUSTNESS_OUT`).

use std::io::Write as _;

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::robustness::robustness_sweep;
use retroturbo_sim::experiments::Effort;

fn main() {
    banner(
        "robustness",
        "graceful degradation under impairments -> BENCH_robustness.json",
    );
    let rows = robustness_sweep(30.0, Effort::from_env(), 5);
    header(&[
        "axis",
        "value",
        "ber",
        "fer",
        "goodput",
        "erasures_flagged",
        "erasures_filled",
        "symbols_corrected",
    ]);
    for r in &rows {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.axis,
            fmt(r.value),
            fmt(r.ber),
            fmt(r.fer),
            fmt(r.goodput),
            r.erasures_flagged,
            r.erasures_filled,
            r.symbols_corrected
        );
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "  {{\"axis\": \"{}\", \"value\": {}, \"ber\": {:.6}, \"fer\": {:.4}, \
             \"goodput\": {:.4}, \"erasures_flagged\": {}, \"erasures_filled\": {}, \
             \"symbols_corrected\": {}}}{}\n",
            r.axis,
            r.value,
            r.ber,
            r.fer,
            r.goodput,
            r.erasures_flagged,
            r.erasures_filled,
            r.symbols_corrected,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("]\n");
    let path =
        std::env::var("BENCH_ROBUSTNESS_OUT").unwrap_or_else(|_| "BENCH_robustness.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_robustness.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_robustness.json");
    eprintln!("# wrote {path}");
}
