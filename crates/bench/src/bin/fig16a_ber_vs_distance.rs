//! Regenerates Fig. 16a: BER versus line-of-sight distance at 4 and 8 kbps.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig16a_ber_vs_distance, Effort};

fn main() {
    banner(
        "fig16a",
        "BER vs distance (paper: 7.5 m @ 8 kbps, 10.5 m @ 4 kbps)",
    );
    let effort = Effort::from_env();
    let distances = [3.0, 5.0, 6.0, 7.0, 7.5, 8.0, 9.0, 10.0, 10.5, 11.0, 12.0];
    let pts = fig16a_ber_vs_distance(&distances, effort, 1);
    header(&["distance_m", "rate", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
    for label in ["4kbps", "8kbps"] {
        let range = pts
            .iter()
            .filter(|p| p.label == label && p.ber < 0.01)
            .map(|p| p.x)
            .fold(0.0f64, f64::max);
        eprintln!("# {label} working range (BER<1%): {range} m");
    }
}
