//! Machine-readable sweep-engine benchmark: times whole figure sweeps in
//! three modes — the end-to-end scalar reference oracle, the fused
//! pipeline without the render cache (the pre-engine driver), and the
//! engine's cached re-noise path, plus the cached path through the Simd
//! (bit-gated) and F32 (timing-only) backend tiers for field sweeps — and
//! writes `BENCH_sweeps.json`: a `meta` provenance block plus one record
//! per `{sweep, mode, threads, points, ms_total, ns_per_point,
//! speedup}` measurement. `speedup` is each sweep's baseline-mode time
//! over the row's time (baseline = the sweep's first listed mode), so the
//! cached row's speedup is the headline engine win. The schema contract
//! (consumed warn-only by `tools/perf_smoke.py`) is documented in
//! `crates/bench/README.md`.
//!
//! Before timing, every mode's full result set is serialised bit-exactly
//! and compared; any divergence between the cached path and its oracles is
//! reported and the process exits nonzero — the same checksum-divergence
//! gate `bench_kernels` applies to its kernel pairs, applied to whole
//! sweeps. Set `RETRO_FULL=1` for the paper-scale protocol (larger grids,
//! 30 × 128-byte packets per point); quick mode is the CI smoke profile.

use std::io::Write as _;
use std::time::Instant;

use retroturbo_bench::banner;
use retroturbo_core::PhyConfig;
use retroturbo_dsp::{backend, Backend};
use retroturbo_sim::experiments::Effort;
use retroturbo_sim::sweep::workloads::{BerOut, EmuSweep, FieldOracle, FieldSweep};
use retroturbo_sim::{
    EmulatedLink, GridPoint, LinkBudget, LinkSimulator, Scene, SweepEngine, SweepWorkload,
};

struct Record {
    sweep: String,
    mode: &'static str,
    threads: usize,
    points: usize,
    ms_total: f64,
    ns_per_point: f64,
    speedup: f64,
}

/// Bit-exact serialisation of a sweep's rows: the cross-mode identity gate.
fn canon(rows: &[(GridPoint, BerOut)]) -> String {
    rows.iter()
        .map(|(p, o)| {
            format!(
                "{}|{}|{:016x}|{:016x}|{:016x}\n",
                p.curve,
                p.round,
                p.x.to_bits(),
                o.ber.to_bits(),
                o.snr_db.to_bits()
            )
        })
        .collect()
}

/// Run `sweep()` `reps` times and return (min wall ms, last result).
fn time_ms<F: FnMut() -> Vec<(GridPoint, BerOut)>>(
    reps: usize,
    mut sweep: F,
) -> (f64, Vec<(GridPoint, BerOut)>) {
    let mut best = f64::INFINITY;
    let mut last = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        last = sweep();
        best = best.min(t0.elapsed().as_nanos() as f64 / 1e6);
    }
    (best, last)
}

/// Measure one sweep across its modes; the first mode is the baseline.
/// Returns the records, the baseline's bit-exact serialisation, and any
/// cross-mode divergence message.
fn measure_sweep<W: SweepWorkload<Out = BerOut>>(
    name: &str,
    modes: &[(&'static str, SweepEngine)],
    workload: &W,
    grid: &[GridPoint],
    reps: usize,
) -> (Vec<Record>, String, Option<String>) {
    let mut records = Vec::new();
    let mut baseline_ms = f64::NAN;
    let mut baseline_canon = String::new();
    let mut diverged = None;
    for (i, (mode, engine)) in modes.iter().enumerate() {
        let (ms, rows) = time_ms(reps, || engine.run(workload, grid.to_vec()));
        let c = canon(&rows);
        if i == 0 {
            baseline_ms = ms;
            baseline_canon = c;
        } else if c != baseline_canon {
            diverged = Some(format!("{name}: {mode} diverged from {}", modes[0].0));
        }
        eprintln!("# {name}/{mode}: {ms:.1} ms over {} points", rows.len());
        records.push(Record {
            sweep: name.to_string(),
            mode,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            points: rows.len(),
            ms_total: ms,
            ns_per_point: ms * 1e6 / rows.len().max(1) as f64,
            speedup: baseline_ms / ms,
        });
    }
    (records, baseline_canon, diverged)
}

/// Measure every sweep at one effort profile, appending records and any
/// divergence messages.
fn run_profile(effort: Effort, records: &mut Vec<Record>, diverged: &mut Vec<String>) {
    let full = effort == Effort::Full;
    let reps = if full { 1 } else { 2 };
    let seed = 7;

    // --- fig16a field sweep: BER vs distance at 4/8 kbps ------------------
    // Quick profile matches the historical `sweep_fig16a_quick` workload
    // (2 distances × 2 curves); full uses the paper's distance grid.
    let distances: &[f64] = if full {
        &[3.0, 5.0, 6.0, 7.0, 7.5, 8.0, 9.0, 10.0, 10.5, 11.0, 12.0]
    } else {
        &[4.0, 9.0]
    };
    let field = |oracle: FieldOracle, bk: Backend| FieldSweep {
        make: move |curve: usize, d: f64| {
            let cfg = if curve == 0 {
                PhyConfig::default_4kbps()
            } else {
                PhyConfig::default_8kbps()
            };
            LinkSimulator::new(cfg, LinkBudget::fov10(), Scene::default_at(d), seed)
                .with_backend(bk)
        },
        n_packets: effort.packets(),
        payload_bytes: effort.payload_bytes(),
        oracle,
    };
    let mut grid = Vec::new();
    for curve in 0..2 {
        for &d in distances {
            grid.push(GridPoint::new(curve, d, seed));
        }
    }
    let name = if full { "fig16a_full" } else { "fig16a_quick" };
    // The scalar end-to-end oracle is the honest "before any kernel work"
    // baseline; the fused no-cache mode is the pre-engine driver. Both must
    // be bit-identical to the cached path.
    {
        let scalar = field(FieldOracle::Scalar, Backend::detect());
        let (recs, scalar_canon, div) = measure_sweep(
            name,
            &[("scalar_oracle", SweepEngine::new(seed).no_cache())],
            &scalar,
            &grid,
            reps,
        );
        let scalar_ms = recs[0].ms_total;
        records.extend(recs);
        if let Some(d) = div {
            diverged.push(d);
        }

        let fused = field(FieldOracle::Fused, Backend::detect());
        let (mut recs, fused_canon, div) = measure_sweep(
            name,
            &[
                ("no_cache_fused", SweepEngine::new(seed).no_cache()),
                ("engine_cached", SweepEngine::new(seed)),
            ],
            &fused,
            &grid,
            reps,
        );
        if let Some(d) = div {
            diverged.push(d);
        }
        // The scalar oracle must agree with the fused modes too; re-base the
        // fused rows' speedups so every row reports gain over it.
        if fused_canon != scalar_canon {
            diverged.push(format!(
                "{name}: fused pipeline diverged from scalar oracle"
            ));
        }
        for r in &mut recs {
            r.speedup = scalar_ms / r.ms_total;
        }
        records.extend(recs);

        // Backend tiers of the cached engine. The Simd tier claims
        // bit-identity end to end, so its rows must serialise exactly like
        // the scalar oracle's; the F32 tier renders different waveform bits
        // by design (its accuracy bound is the sim crate's BER-delta test),
        // so it contributes timing only.
        if backend::simd_available() {
            let simd = field(FieldOracle::Fused, Backend::Simd);
            let (mut recs, simd_canon, _) = measure_sweep(
                name,
                &[("engine_cached_simd", SweepEngine::new(seed))],
                &simd,
                &grid,
                reps,
            );
            if simd_canon != scalar_canon {
                diverged.push(format!("{name}: simd tier diverged from scalar oracle"));
            }
            for r in &mut recs {
                r.speedup = scalar_ms / r.ms_total;
            }
            records.extend(recs);
        } else {
            eprintln!("# no SIMD support on this host: skipping {name}/engine_cached_simd");
        }
        {
            let f32s = field(FieldOracle::Fused, Backend::F32);
            let (mut recs, _, _) = measure_sweep(
                name,
                &[("engine_cached_f32", SweepEngine::new(seed))],
                &f32s,
                &grid,
                reps,
            );
            for r in &mut recs {
                r.speedup = scalar_ms / r.ms_total;
            }
            records.extend(recs);
        }
    }

    // --- fig18a emulated sweep: BER vs SNR per rate (§7.3) ----------------
    // Every point of a rate's curve shares one cached render set; the
    // no-cache mode re-renders and re-draws noise at every SNR, which is
    // what the pre-engine driver did.
    let emu_cfgs: Vec<(usize, fn() -> PhyConfig)> =
        vec![(0, PhyConfig::default_4kbps), (1, PhyConfig::default_8kbps)];
    let snrs: Vec<f64> = if full {
        (0..13).map(|i| 4.0 + 3.0 * i as f64).collect()
    } else {
        vec![12.0, 20.0, 28.0, 36.0]
    };
    let emu = EmuSweep {
        make: move |curve: usize, snr: f64| EmulatedLink::new((emu_cfgs[curve].1)(), snr, seed),
        n_packets: effort.packets(),
        payload_bytes: effort.payload_bytes(),
        data_seed: seed ^ 0x5A5A,
    };
    let mut emu_grid = Vec::new();
    for curve in 0..2 {
        for &s in &snrs {
            emu_grid.push(GridPoint::new(curve, s, seed));
        }
    }
    let emu_name = if full { "fig18a_full" } else { "fig18a_quick" };
    let (recs, _, div) = measure_sweep(
        emu_name,
        &[
            ("no_cache_fused", SweepEngine::new(seed).no_cache()),
            ("engine_cached", SweepEngine::new(seed)),
        ],
        &emu,
        &emu_grid,
        reps,
    );
    records.extend(recs);
    if let Some(d) = div {
        diverged.push(d);
    }
}

fn main() {
    banner(
        "bench-sweeps",
        "figure-sweep engine timings -> BENCH_sweeps.json",
    );
    // Pin the process default to Scalar (as `bench_kernels` does) so the
    // legacy rows stay comparable with pre-backend baselines; the explicit
    // simd/f32 rows opt in via `with_backend`. A pre-set `RETROTURBO_BACKEND`
    // (CI matrix legs) wins over the pin.
    let forced = if std::env::var("RETROTURBO_BACKEND").is_ok() {
        Backend::detect()
    } else {
        let _ = Backend::force(Backend::Scalar);
        Backend::detect()
    };
    let mut records: Vec<Record> = Vec::new();
    let mut diverged: Vec<String> = Vec::new();
    // The quick rows are the CI-smoke trajectory; a RETRO_FULL=1 run adds
    // the paper-scale rows after them, so the committed file carries both.
    run_profile(Effort::Quick, &mut records, &mut diverged);
    if Effort::from_env() == Effort::Full {
        run_profile(Effort::Full, &mut records, &mut diverged);
    }

    // --- Emit ------------------------------------------------------------
    // Same `{"meta": {...}, "sweeps": [...]}` provenance shape as
    // `BENCH_kernels.json`, so archived runs stay attributable to a backend
    // and host feature set.
    let mut json = String::from("{\n  \"meta\": {\n");
    json.push_str(&format!(
        "    \"default_backend\": \"{}\",\n",
        forced.label()
    ));
    json.push_str(&format!(
        "    \"simd_available\": {},\n",
        backend::simd_available()
    ));
    json.push_str("    \"cpu_features\": {");
    let feats = backend::cpu_features();
    for (i, (fname, on)) in feats.iter().enumerate() {
        json.push_str(&format!(
            "\"{fname}\": {on}{}",
            if i + 1 < feats.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"quick\": {}\n  }},\n  \"sweeps\": [\n",
        Effort::from_env() != Effort::Full
    ));
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sweep\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"points\": {}, \"ms_total\": {:.1}, \"ns_per_point\": {:.0}, \"speedup\": {:.3}}}{}\n",
            r.sweep,
            r.mode,
            r.threads,
            r.points,
            r.ms_total,
            r.ns_per_point,
            r.speedup,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_SWEEPS_OUT").unwrap_or_else(|_| "BENCH_sweeps.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweeps.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sweeps.json");
    eprintln!("# wrote {path}");
    print!("{json}");

    if !diverged.is_empty() {
        eprintln!("# FAIL: sweep-mode checksum divergence: {diverged:?}");
        std::process::exit(1);
    }
}
