//! Extension (§8 "Efficient Multiple Access"): two tags transmitting
//! concurrently, separated by iterative successive interference
//! cancellation.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::multiaccess::two_tag_sic;

fn main() {
    banner(
        "ext-multiaccess",
        "two concurrent tags: iterative SIC vs direct decode of the weak tag",
    );
    header(&["weak_gain", "strong_ber", "weak_ber_direct", "weak_ber_sic"]);
    for &g in &[0.04, 0.06, 0.1, 0.15] {
        let o = two_tag_sic(g, 40, 58.0, 16, 3);
        println!(
            "{}\t{}\t{}\t{}",
            fmt(g),
            fmt(o.strong_ber),
            fmt(o.weak_ber_direct),
            fmt(o.weak_ber_sic)
        );
    }
    eprintln!("# pass order: strong → subtract → weak → subtract → strong → subtract → weak");
}
