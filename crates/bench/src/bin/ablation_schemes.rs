//! Ablation: the VLBC modulation ladder at one SNR — trend-OOK → 16-PAM →
//! basic DSM → overlapped DSM×PQAM.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::ablation::scheme_ladder;

fn main() {
    banner("ablation-schemes", "modulation ladder at 40 dB");
    let rows = scheme_ladder(40.0, 2);
    header(&["scheme", "rate_bps", "ber"]);
    for r in &rows {
        println!("{}\t{}\t{}", r.scheme, fmt(r.rate_bps), fmt(r.ber));
    }
    eprintln!(
        "# each rung trades the previous bottleneck for the next: trend -> levels -> edges -> ISI"
    );
}
