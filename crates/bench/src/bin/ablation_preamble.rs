//! Ablation: the conjugate (I/Q-imbalance) term of the §4.3.1 widely-linear
//! preamble fit.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::ablation::preamble_conjugate_term;

fn main() {
    banner(
        "ablation-preamble",
        "widely-linear vs plain-linear correction under I/Q imbalance",
    );
    let rows = preamble_conjugate_term(&[0.0, 0.05, 0.1, 0.2, 0.3], 1);
    header(&["imbalance", "full_residual", "linear_only_residual"]);
    for r in &rows {
        println!(
            "{}\t{}\t{}",
            fmt(r.imbalance),
            fmt(r.full_residual),
            fmt(r.linear_residual)
        );
    }
}
