//! Regenerates Fig. 13: relative demodulation threshold over (L, P) per rate.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_core::perf_index::relative_threshold_db;
use retroturbo_sim::experiments::thresholds::fig13_threshold_surface;

fn main() {
    banner(
        "fig13",
        "demodulation-threshold surface over DSM order × PQAM order",
    );
    let rates = [1_000.0, 4_000.0, 8_000.0, 16_000.0];
    let pts = fig13_threshold_surface(&rates, 8, 2, 1);
    let d_ref = pts.iter().map(|p| p.d).fold(f64::MIN, f64::max);
    header(&["rate_kbps", "L", "P", "T_ms", "D", "rel_threshold_dB"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            fmt(p.rate_bps / 1e3),
            p.l,
            p.p,
            fmt(p.t_slot * 1e3),
            fmt(p.d),
            fmt(relative_threshold_db(p.d, d_ref))
        );
    }
    eprintln!("# the (L,P) minimizing the threshold at each rate is the Fig.13 valley");
}
