//! Regenerates Fig. 5: basic (a) and overlapped (b) DSM symbol waveforms.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::waveforms::{fig5a_basic_dsm, fig5b_overlapped_dsm};

fn main() {
    banner(
        "fig5",
        "DSM symbol construction: basic (3-order) and overlapped (4-order)",
    );
    println!("## fig5a: basic 3-order DSM, symbol '101', tau1 = 1 ms");
    let a = fig5a_basic_dsm(&[true, false, true], 1.0, 40_000.0);
    header(&[
        "t_ms",
        &a.iter()
            .map(|s| s.label.clone())
            .collect::<Vec<_>>()
            .join("\t"),
    ]);
    for i in (0..a[0].data.len()).step_by(4) {
        let mut row = vec![fmt(i as f64 * a[0].dt * 1e3)];
        row.extend(a.iter().map(|s| fmt(s.data[i].re)));
        println!("{}", row.join("\t"));
    }
    println!("## fig5b: overlapped 4-order DSM, T = 0.5 ms, all-ones");
    let b = fig5b_overlapped_dsm(4, 0.5, 40_000.0);
    header(&[
        "t_ms",
        &b.iter()
            .map(|s| s.label.clone())
            .collect::<Vec<_>>()
            .join("\t"),
    ]);
    for i in (0..b[0].data.len()).step_by(4) {
        let mut row = vec![fmt(i as f64 * b[0].dt * 1e3)];
        row.extend(b.iter().map(|s| fmt(s.data[i].re)));
        println!("{}", row.join("\t"));
    }
}
