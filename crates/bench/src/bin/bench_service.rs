//! Machine-readable streaming-service benchmark: drives the staged decode
//! pipeline (`retroturbo-service`) to saturation and writes
//! `BENCH_service.json` — a `meta` provenance block plus one record per
//! scenario with `{scenario, workers, frames_in, frames_decoded,
//! frames_degraded, frames_dropped, packets_per_sec, p50_ms, p99_ms,
//! samples_in, samples_lost, frame_queue_depths, out_queue_depths,
//! equivalent}`. The schema contract (consumed by `tools/perf_smoke.py` in
//! CI) is documented in `crates/bench/README.md`.
//!
//! Scenarios:
//!
//! * `saturation@{1,2,8}` — the whole backlog is pushed up front into a
//!   ring large enough to hold it, so the workers run flat out; throughput
//!   is recovered frames over wall time, and p50/p99 are per-frame
//!   detection→recovery latencies at that load. Every recovered payload is
//!   bit-compared against the testbed's ground truth; any mismatch or lost
//!   frame flips `equivalent` to false and the process exits nonzero, so CI
//!   can use this binary as a decode-equivalence smoke test.
//! * `overload` — the same backlog through a ring that only holds two
//!   scenes: the oldest scenes must degrade to erasure placeholders and be
//!   dropped *by accounting* (never silently), while every frame that does
//!   come through must still carry the true payload for its stream
//!   position. Correctness is gated; completeness is not.
//!
//! Set `BENCH_SERVICE_QUICK=1` for reduced frame counts (CI smoke mode);
//! `BENCH_SERVICE_OUT` overrides the output path.

use std::io::Write as _;
use std::time::Instant;

use retroturbo_bench::banner;
use retroturbo_dsp::backend;
use retroturbo_mac::CodingChoice;
use retroturbo_service::{loopback_phy, DecodeService, ServiceEvent, ServiceStats, Testbed};

const RUN_SEED: u64 = 0xBE7C;

struct Row {
    scenario: &'static str,
    workers: usize,
    frames_in: u64,
    stats: ServiceStats,
    packets_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    equivalent: bool,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Run one scenario: push `frames` scenes (plus a quiet tail) into a
/// service, drain every event, check payloads against ground truth.
fn run_scenario(
    scenario: &'static str,
    bed: &Testbed,
    frames: u64,
    workers: usize,
    ring_scenes: Option<usize>,
) -> Row {
    let scenes: Vec<_> = (0..frames).map(|i| bed.frame(i, RUN_SEED)).collect();
    let scene_len = scenes[0].samples.len();
    let mut cfg = bed.service_config();
    cfg.workers = workers;
    cfg.ring_capacity = match ring_scenes {
        // Saturation: the ring swallows the entire backlog + tail.
        None => (frames as usize + 3) * scene_len,
        Some(n) => n * scene_len,
    };
    let svc = DecodeService::spawn(cfg);
    let input = svc.input();

    let t0 = Instant::now();
    for scene in &scenes {
        input.push(&scene.samples, None);
    }
    if ring_scenes.is_none() {
        // A quiet tail lets the framer flush the final frame. Skipped under
        // overload: pushed last, it would evict the whole backlog from the
        // tiny ring and nothing real would survive to decode.
        input.push(&bed.idle(2 * scene_len), None);
    }
    input.close();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut decoded = 0u64;
    let mut correct = true;
    while let Some(ev) = svc.recv() {
        if let ServiceEvent::Frame(f) = ev {
            decoded += 1;
            latencies_ms.push(f.latency.as_secs_f64() * 1e3);
            // Every recovered frame must carry the true payload for the
            // stream position it claims — under overload too.
            let index = f.offset / scene_len as u64;
            if f.payload != bed.payload_for(index) {
                eprintln!(
                    "# MISMATCH {scenario}@{workers}: frame at {} wrong payload",
                    f.offset
                );
                correct = false;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = svc.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let complete = ring_scenes.is_none();
    let equivalent = correct && (!complete || decoded == frames);
    if complete && decoded != frames {
        eprintln!("# MISMATCH {scenario}@{workers}: {decoded}/{frames} frames recovered");
    }
    Row {
        scenario,
        workers,
        frames_in: frames,
        packets_per_sec: decoded as f64 / elapsed,
        p50_ms: percentile_ms(&latencies_ms, 0.50),
        p99_ms: percentile_ms(&latencies_ms, 0.99),
        equivalent,
        stats,
    }
}

fn main() {
    banner(
        "bench-service",
        "streaming decode pipeline throughput/latency -> BENCH_service.json",
    );
    let quick = std::env::var("BENCH_SERVICE_QUICK").is_ok();
    let frames: u64 = if quick { 8 } else { 64 };
    let bed = Testbed::new(
        loopback_phy(2, 4),
        20,
        Some(CodingChoice { n: 44, k: 22 }),
        0x5B,
    )
    .with_snr(35.0);

    let mut rows = Vec::new();
    for &workers in &[1usize, 2, 8] {
        rows.push(run_scenario("saturation", &bed, frames, workers, None));
    }
    rows.push(run_scenario("overload", &bed, frames, 2, Some(2)));

    let mut json = String::from("{\n  \"meta\": {\n");
    json.push_str(&format!(
        "    \"default_backend\": \"{}\",\n",
        retroturbo_dsp::Backend::detect().label()
    ));
    json.push_str(&format!(
        "    \"simd_available\": {},\n",
        backend::simd_available()
    ));
    json.push_str("    \"cpu_features\": {");
    let feats = backend::cpu_features();
    for (i, (name, on)) in feats.iter().enumerate() {
        json.push_str(&format!(
            "\"{name}\": {on}{}",
            if i + 1 < feats.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n");
    json.push_str(&format!(
        "    \"quick\": {quick}\n  }},\n  \"service\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        let depths = |q: &retroturbo_service::QueueDepth| {
            q.counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"workers\": {}, \"frames_in\": {}, \"frames_decoded\": {}, \"frames_degraded\": {}, \"frames_dropped\": {}, \"packets_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"samples_in\": {}, \"samples_lost\": {}, \"frame_queue_depths\": [{}], \"out_queue_depths\": [{}], \"equivalent\": {}}}{}\n",
            r.scenario,
            r.workers,
            r.frames_in,
            s.frames_decoded,
            s.frames_degraded,
            s.frames_dropped,
            r.packets_per_sec,
            r.p50_ms,
            r.p99_ms,
            s.samples_pushed,
            s.samples_lost,
            depths(&s.frame_queue_depth),
            depths(&s.out_queue_depth),
            r.equivalent,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    let mut f = std::fs::File::create(&path).expect("create BENCH_service.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_service.json");
    eprintln!("# wrote {path}");
    print!("{json}");

    if rows.iter().any(|r| !r.equivalent) {
        eprintln!("# FAIL: streaming decode diverged from ground truth");
        std::process::exit(1);
    }
}
