//! Regenerates the headline claim: 32x experimental / 128x emulated rate
//! gain over the OOK baseline.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::network::headline_rate_gain;

fn main() {
    banner("headline", "rate gain over the trend-OOK baseline");
    let g = headline_rate_gain();
    header(&["scheme", "rate_bps", "gain_vs_ook"]);
    println!("trend-OOK baseline\t{}\t1", fmt(g.ook_bps));
    println!(
        "RetroTurbo (experimental)\t{}\t{}",
        fmt(g.experimental_bps),
        fmt(g.experimental_gain)
    );
    println!(
        "RetroTurbo (emulation)\t{}\t{}",
        fmt(g.emulated_bps),
        fmt(g.emulated_gain)
    );
}
