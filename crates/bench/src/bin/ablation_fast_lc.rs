//! Outlook (§1/§10): the DSM×PQAM design on faster liquid crystals
//! (ferroelectric-class cells switch ~100× faster than the COTS shutter).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::ablation::fast_lc_scaling;

fn main() {
    banner("ablation-fast-lc", "rate scaling with faster LC substrates");
    let pts = fast_lc_scaling(&[1.0, 4.0, 10.0, 40.0, 100.0], 35.0, 1);
    header(&["speedup", "T_us", "rate_kbps", "ber_at_35dB"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.speedup),
            fmt(p.t_slot * 1e6),
            fmt(p.rate_bps / 1e3),
            fmt(p.ber)
        );
    }
    eprintln!("# same modulation machinery; only the substrate constants change");
}
