//! Regenerates Fig. 18c: rate-adaptive MAC vs fixed-rate baseline.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::network::fig18c_rate_adaptation;

fn main() {
    banner(
        "fig18c",
        "rate adaptation gain vs tags (paper: 1.2x @ 4 tags, 3.7x @ 100 tags)",
    );
    let pts = fig18c_rate_adaptation(&[1, 2, 4, 10, 20, 50, 100], 100, 1);
    header(&["n_tags", "adaptive_kbps", "baseline_kbps", "gain"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            p.n_tags,
            fmt(p.adaptive_bps / 1e3),
            fmt(p.baseline_bps / 1e3),
            fmt(p.gain)
        );
    }
}
