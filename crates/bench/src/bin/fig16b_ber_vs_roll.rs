//! Regenerates Fig. 16b: BER versus roll misalignment (PQAM's rotation
//! tolerance — expect flat curves).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig16b_ber_vs_roll, Effort};

fn main() {
    banner(
        "fig16b",
        "BER vs roll angle, inside and outside the working range",
    );
    let pts = fig16b_ber_vs_roll(
        &[0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0],
        &[5.0, 8.0],
        Effort::from_env(),
        1,
    );
    header(&["roll_deg", "distance", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
    eprintln!("# paper: influence of roll is negligible at any angle");
}
