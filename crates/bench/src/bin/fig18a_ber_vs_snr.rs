//! Regenerates Fig. 18a: emulated BER vs SNR per modulation order/rate.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::network::{fig18a_ber_vs_snr, thresholds_at_one_percent};
use retroturbo_sim::experiments::Effort;

fn main() {
    banner(
        "fig18a",
        "BER vs SNR (paper: 32 kbps at ~55 dB, 1 kbps at ~-5 dB)",
    );
    let effort = Effort::from_env();
    let (n_pkts, bytes) = match effort {
        Effort::Quick => (4, 32),
        Effort::Full => (20, 128),
    };
    let snrs: Vec<f64> = (-2..=13).map(|k| k as f64 * 4.0 - 4.0).collect(); // −12..48 step 4
    let mut snrs = snrs;
    snrs.extend([52.0, 56.0, 60.0]);
    let pts = fig18a_ber_vs_snr(&snrs, n_pkts, bytes, 1);
    header(&["rate", "snr_dB", "ber"]);
    for p in &pts {
        println!("{}\t{}\t{}", p.label, fmt(p.snr_db), fmt(p.ber));
    }
    eprintln!("# 1%-BER thresholds:");
    for (label, th) in thresholds_at_one_percent(&pts) {
        match th {
            Some(t) => eprintln!("#   {label}: {:.1} dB", t),
            None => eprintln!("#   {label}: not reached in sweep"),
        }
    }
}
