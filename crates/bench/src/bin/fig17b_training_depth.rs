//! Regenerates Fig. 17b: channel-training memory depth V vs distance
//! (paper: V=1 has an error floor even at high SNR; V=2 ≈ V=3).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig17b_training_depth, Effort};

fn main() {
    banner(
        "fig17b",
        "training memory depth V (paper notation = ours − 1)",
    );
    let pts = fig17b_training_depth(&[3.0, 5.0, 6.0, 7.0], Effort::from_env(), 1);
    header(&["distance_m", "depth", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
}
