//! Regenerates the §7.2.2 latency microbenchmark: airtime decomposition and
//! processing wall-clock for 4 and 8 kbps packets.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_core::PhyConfig;
use retroturbo_sim::experiments::microbench::latency_report;

fn main() {
    banner(
        "micro-latency",
        "per-packet latency decomposition (128-byte packets)",
    );
    header(&[
        "config",
        "preamble_ms",
        "training_ms",
        "payload_ms",
        "detect_cpu_ms",
        "train_cpu_ms",
        "demod_cpu_ms",
        "detect_sym_per_s",
        "train_sym_per_s",
        "demod_sym_per_s",
        "real_time",
    ]);
    for (label, cfg) in [
        ("4kbps", PhyConfig::default_4kbps()),
        ("8kbps", PhyConfig::default_8kbps()),
    ] {
        let r = latency_report(label, cfg, 128, 1);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.label,
            fmt(r.preamble_air_s * 1e3),
            fmt(r.training_air_s * 1e3),
            fmt(r.payload_air_s * 1e3),
            fmt(r.detect_cpu_s * 1e3),
            fmt(r.train_cpu_s * 1e3),
            fmt(r.demod_cpu_s * 1e3),
            fmt(r.detect_sym_per_s),
            fmt(r.train_sym_per_s),
            fmt(r.demod_sym_per_s),
            r.real_time
        );
    }
    eprintln!("# paper: 8 kbps payload 128 ms, demod 90 ms (real-time pipelined)");
    eprintln!("# real-time when each stage's sym/s exceeds the on-air slot rate (1/t_slot)");
}
