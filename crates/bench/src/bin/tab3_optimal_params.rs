//! Regenerates Tab. 3: optimal (L, P, T) per rate with performance index D
//! and relative demodulation threshold.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::thresholds::tab3_optimal_params;

fn main() {
    banner(
        "tab3",
        "optimal parameters and relative thresholds per rate",
    );
    let rows = tab3_optimal_params(&[1_000.0, 4_000.0, 8_000.0, 12_000.0, 16_000.0], 8, 3, 1);
    header(&["rate_kbps", "L", "P", "T_ms", "D", "threshold_dB_rel_1kbps"]);
    for r in rows {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            fmt(r.rate_bps / 1e3),
            r.cfg.l_order,
            r.cfg.pqam_order,
            fmt(r.cfg.t_slot * 1e3),
            fmt(r.d),
            fmt(r.threshold_db)
        );
    }
    eprintln!("# paper Tab.3 thresholds: 0 / 20 / 28 / 31 / 33 dB for 1/4/8/12/16 kbps");
}
