//! Regenerates the §7.2.2 power microbenchmark: the tag energy model.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::microbench::power_table;

fn main() {
    banner(
        "micro-power",
        "tag power (paper: 0.8 mW at both 4 and 8 kbps)",
    );
    header(&["config", "power_mW"]);
    for r in power_table() {
        println!("{}\t{}", r.label, fmt(r.power_w * 1e3));
    }
    eprintln!("# rate changes PQAM order, not firing rate => power is rate-independent");
}
