//! Regenerates Tab. 2: LCM emulation relative error vs m-sequence order V.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::emu_error::tab2_mls_error;

fn main() {
    banner("tab2", "emulation error vs MLS order (reference V = 17)");
    let rows = tab2_mls_error(&[4, 6, 8, 10, 12, 14, 16], 17, 20, 80, 1);
    header(&["V", "max_rel_err", "avg_rel_err"]);
    for r in rows {
        println!("{}\t{}\t{}", r.v, fmt(r.max), fmt(r.avg));
    }
    eprintln!("# paper Tab.2: max 59%→0.7%, avg 15%→0.1% from V=4 to V=16");
}
