//! Regenerates Fig. 16d: BER under dark/night/day ambient light (expect
//! flat — ambient is rejected by the passband front end).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig16d_ber_vs_ambient, Effort};

fn main() {
    banner("fig16d", "BER vs ambient light level");
    let pts = fig16d_ber_vs_ambient(Effort::from_env(), 1);
    header(&["lux", "condition", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
    eprintln!("# paper: consistent behaviour regardless of illumination");
}
