//! Regenerates Fig. 18b: goodput vs SNR with Reed–Solomon coding and
//! stop-and-wait retransmission.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::network::fig18b_coding_gain;
use retroturbo_sim::experiments::Effort;

fn main() {
    banner(
        "fig18b",
        "coding gain: coded 32 kbps beats raw over a wide SNR span",
    );
    let (n_pkts, bytes) = match Effort::from_env() {
        Effort::Quick => (4, 64),
        Effort::Full => (15, 128),
    };
    let snrs: Vec<f64> = (6..=15).map(|k| k as f64 * 4.0).collect(); // 24..60 step 4
    let pts = fig18b_coding_gain(&snrs, n_pkts, bytes, 1);
    header(&["option", "snr_dB", "goodput_kbps"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}",
            p.label,
            fmt(p.snr_db),
            fmt(p.goodput_bps / 1e3)
        );
    }
}
