//! Regenerates Fig. 9 / §4.2.3: I/Q pulse identity and orthogonality.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::waveforms::fig9_iq_orthogonality;

fn main() {
    banner(
        "fig9",
        "p_I = j·p_Q: identical pulse shapes on orthogonal axes",
    );
    let (s, shape_err, cross0, isi) = fig9_iq_orthogonality(8, 0.5, 40_000.0);
    header(&["t_ms", "p_I", "p_Q"]);
    for (i, z) in s.data.iter().enumerate().step_by(2) {
        println!(
            "{}\t{}\t{}",
            fmt(i as f64 * s.dt * 1e3),
            fmt(z.re),
            fmt(z.im)
        );
    }
    eprintln!("# pulse-shape identity error: {}", fmt(shape_err));
    eprintln!("# zero-lag cross-polarization: {}", fmt(cross0));
    println!("## same-channel ISI overlap per lag (forces joint equalization for 0<k<L)");
    header(&["lag_k", "normalized_overlap"]);
    for (k, v) in isi {
        println!("{k}\t{}", fmt(v));
    }
}
