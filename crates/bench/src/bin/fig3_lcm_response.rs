//! Regenerates Fig. 3: the LCM's asymmetric pulse response.

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::waveforms::fig3_lcm_response;

fn main() {
    banner(
        "fig3",
        "LCM pulse response: fast charge, plateaued slow discharge",
    );
    let s = fig3_lcm_response(5.0, 10.0, 40_000.0);
    header(&["t_ms", "contrast"]);
    for (i, z) in s.data.iter().enumerate() {
        if i % 4 == 0 {
            println!("{}\t{}", fmt(i as f64 * s.dt * 1e3), fmt(z.re));
        }
    }
    // Summary timings (the Fig. 3 annotations).
    let t_charge = s.data.iter().position(|z| z.re > 0.9).unwrap() as f64 * s.dt;
    let dis_start = (5.0e-3 / s.dt) as usize;
    let t_plateau = s.data[dis_start..].iter().position(|z| z.re < 0.8).unwrap() as f64 * s.dt;
    let t_done = s.data[dis_start..]
        .iter()
        .position(|z| z.re < -0.9)
        .unwrap() as f64
        * s.dt;
    eprintln!("# charge-to-90%: {:.2} ms (paper: ~0.3 ms)", t_charge * 1e3);
    eprintln!(
        "# discharge plateau: {:.2} ms (paper: ~1 ms)",
        t_plateau * 1e3
    );
    eprintln!("# discharge done: {:.2} ms (paper: ~4 ms)", t_done * 1e3);
}
