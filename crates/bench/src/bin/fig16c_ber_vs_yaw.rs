//! Regenerates Fig. 16c: BER versus yaw misalignment, with channel training
//! on/off (training calibrates the yaw-induced symbol deviation).

use retroturbo_bench::{banner, fmt, header};
use retroturbo_sim::experiments::{field::fig16c_ber_vs_yaw, Effort};

fn main() {
    banner(
        "fig16c",
        "BER vs yaw (paper: OK to ±40°, fails beyond ±55°)",
    );
    let pts = fig16c_ber_vs_yaw(
        &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 55.0, 60.0],
        Effort::from_env(),
        1,
    );
    header(&["yaw_deg", "mode", "snr_dB", "ber"]);
    for p in &pts {
        println!(
            "{}\t{}\t{}\t{}",
            fmt(p.x),
            p.label,
            fmt(p.snr_db),
            fmt(p.ber)
        );
    }
}
