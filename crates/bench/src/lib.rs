//! # retroturbo-bench
//!
//! The benchmark harness: one binary per table/figure of the paper
//! (`src/bin/…`, printing the same rows/series the paper reports, TSV to
//! stdout) and Criterion benches for the hot kernels (`benches/`).
//!
//! Binaries default to a quick profile; set `RETRO_FULL=1` for the
//! paper-scale protocol (30 × 128-byte packets per point, §7.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print a TSV header line.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Format a float compactly for TSV output.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 0.01 && x.abs() < 1e6 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

/// Print one experiment banner with the paper artifact it regenerates.
pub fn banner(id: &str, what: &str) {
    eprintln!("# {id}: {what}");
    eprintln!(
        "# profile: {} (set RETRO_FULL=1 for the paper-scale protocol)",
        if std::env::var("RETRO_FULL")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
        {
            "FULL"
        } else {
            "quick"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert!(fmt(1e-7).contains('e'));
        assert!(fmt(1e9).contains('e'));
    }
}
