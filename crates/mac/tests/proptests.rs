//! Property tests for the MAC.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retroturbo_mac::{
    apportion_frames, build_superframe, build_weighted_superframe, discover, protect,
    protected_bits, recover, CodingChoice, RateTable, TagAssignment,
};

fn tag(id: u32, snr_db: f64) -> TagAssignment {
    let table = RateTable::profiled_default();
    TagAssignment {
        id,
        snr_db,
        rate: table.select(snr_db, 0.0),
    }
}

/// Seeded Fisher–Yates permutation of `0..n`.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        idx.swap(i, j);
    }
    idx
}

fn permuted<T: Clone>(xs: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| xs[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn protect_recover_round_trip(payload in proptest::collection::vec(any::<u8>(), 1..200),
                                  seed in 1u8..=0x7F,
                                  coded in any::<bool>()) {
        let coding = coded.then_some(CodingChoice { n: 255, k: 223 });
        let bits = protect(&payload, coding, seed);
        prop_assert_eq!(bits.len(), protected_bits(payload.len(), coding));
        prop_assert_eq!(recover(&bits, payload.len(), coding, seed).unwrap(), payload);
    }

    #[test]
    fn coded_recovery_survives_scattered_byte_errors(
        payload in proptest::collection::vec(any::<u8>(), 16..64),
        errs in proptest::collection::hash_set(0usize..255, 0..=16),
        flip in 1u8..=255,
    ) {
        let coding = Some(CodingChoice { n: 255, k: 223 });
        let mut bits = protect(&payload, coding, 0x5B);
        for &e in &errs {
            for b in 0..8 {
                bits[e * 8 + b] ^= (flip >> (b % 8)) & 1 == 1;
            }
        }
        prop_assert_eq!(recover(&bits, payload.len(), coding, 0x5B).unwrap(), payload);
    }

    #[test]
    fn discovery_always_completes(n in 1usize..60, window in 1usize..32, seed in any::<u64>()) {
        let ids: Vec<u32> = (0..n as u32).collect();
        let out = discover(&ids, window, 50_000, seed);
        let mut sorted = out.order.clone();
        sorted.sort();
        prop_assert_eq!(sorted, ids);
    }

    #[test]
    fn rate_selection_monotone(snr_lo in -20.0f64..70.0, d in 0.0f64..30.0) {
        let t = RateTable::profiled_default();
        let g_lo = t.select(snr_lo, 0.0).goodput();
        let g_hi = t.select(snr_lo + d, 0.0).goodput();
        prop_assert!(g_hi >= g_lo);
    }

    #[test]
    fn apportion_conserves_frames_and_respects_weight_order(
        weights in collection::vec(0.0f64..50.0, 1..9),
        total in 0usize..200,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let counts = apportion_frames(&weights, total);
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        for i in 0..weights.len() {
            // A tag with zero priority never takes airtime from the others.
            if weights[i] == 0.0 {
                prop_assert_eq!(counts[i], 0);
            }
            for j in 0..weights.len() {
                if weights[i] > weights[j] {
                    prop_assert!(
                        counts[i] >= counts[j],
                        "weight {} > {} but frames {} < {}",
                        weights[i], weights[j], counts[i], counts[j]
                    );
                }
            }
        }
    }

    #[test]
    fn apportion_is_permutation_equivariant(
        weights in collection::vec(0.1f64..50.0, 2..9),
        total in 1usize..100,
        pseed in any::<u64>(),
    ) {
        // The largest-remainder tie-break is index-order-dependent by
        // construction; the equivariance claim only holds when no two
        // fractional remainders tie, which is generic for continuous draws.
        let sum: f64 = weights.iter().sum();
        let fracs: Vec<f64> = weights
            .iter()
            .map(|&w| {
                let q = total as f64 * w / sum;
                q - q.floor()
            })
            .collect();
        let mut distinct = true;
        for i in 0..fracs.len() {
            for j in i + 1..fracs.len() {
                if (fracs[i] - fracs[j]).abs() < 1e-9 {
                    distinct = false;
                }
            }
        }
        prop_assume!(distinct);
        let perm = permutation(weights.len(), pseed);
        let direct = apportion_frames(&permuted(&weights, &perm), total);
        let expected = permuted(&apportion_frames(&weights, total), &perm);
        prop_assert_eq!(direct, expected);
    }

    #[test]
    fn superframe_assignment_is_permutation_invariant(
        snrs in collection::vec(-10.0f64..65.0, 1..8),
        payload_bits in 64usize..4096,
        guard in 0.0f64..1e-2,
        pseed in any::<u64>(),
    ) {
        let tags: Vec<TagAssignment> =
            snrs.iter().enumerate().map(|(i, &s)| tag(i as u32, s)).collect();
        let (slots, dur) = build_superframe(&tags, payload_bits, guard);
        // One slot per tag, in registration order, back-to-back.
        prop_assert_eq!(slots.len(), tags.len());
        for (slot, t) in slots.iter().zip(&tags) {
            prop_assert_eq!(slot.tag_id, t.id);
        }
        for w in slots.windows(2) {
            prop_assert!(w[0].start + w[0].duration <= w[1].start + 1e-12);
        }
        let last = slots.last().unwrap();
        prop_assert!(last.start + last.duration <= dur + 1e-12);

        // Re-registering the fleet in any order permutes the schedule but
        // leaves every tag's airtime and the super-frame length unchanged.
        let perm = permutation(tags.len(), pseed);
        let (slots_p, dur_p) = build_superframe(&permuted(&tags, &perm), payload_bits, guard);
        let airtime = |slots: &[retroturbo_mac::ScheduledSlot]| -> Vec<(u32, u64)> {
            let mut a: Vec<(u32, u64)> = slots
                .iter()
                .map(|s| (s.tag_id, s.duration.to_bits()))
                .collect();
            a.sort_unstable();
            a
        };
        prop_assert_eq!(airtime(&slots), airtime(&slots_p));
        prop_assert!((dur - dur_p).abs() <= 1e-9 * dur.abs().max(1.0));
    }

    #[test]
    fn weighted_superframe_never_double_books(
        fleet in collection::vec((-10.0f64..65.0, 0.0f64..10.0), 1..8),
        payload_bits in 64usize..4096,
        guard in 0.0f64..1e-2,
        total_frames in 1usize..40,
    ) {
        let weights: Vec<f64> = fleet.iter().map(|&(_, w)| w).collect();
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let tags: Vec<TagAssignment> = fleet
            .iter()
            .enumerate()
            .map(|(i, &(s, _))| tag(i as u32, s))
            .collect();
        let (slots, dur) =
            build_weighted_superframe(&tags, payload_bits, guard, &weights, total_frames);
        prop_assert_eq!(slots.len(), total_frames);
        // Chronological and collision-free: no two slots overlap in time.
        for w in slots.windows(2) {
            prop_assert!(
                w[0].start + w[0].duration <= w[1].start + 1e-12,
                "slots double-booked: {:?} then {:?}", w[0], w[1]
            );
        }
        let last = slots.last().unwrap();
        prop_assert!(last.start + last.duration <= dur + 1e-12);
        // The layout delivers exactly the apportioned frame counts.
        let owed = apportion_frames(&weights, total_frames);
        for (i, t) in tags.iter().enumerate() {
            let got = slots.iter().filter(|s| s.tag_id == t.id).count();
            prop_assert_eq!(got, owed[i], "tag {} frame count", t.id);
        }
    }

    #[test]
    fn discovery_converges_under_seeded_tag_churn(
        n0 in 1usize..40,
        window in 1usize..16,
        churn_rounds in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = (0..n0 as u32).collect();
        let mut next_id = n0 as u32;
        for step in 0..churn_rounds as u64 {
            // Churn the population: ~a quarter of the tags leave the FoV,
            // a few new ones arrive.
            ids.retain(|_| rng.gen_range(0..4usize) != 0);
            for _ in 0..rng.gen_range(0..8usize) {
                ids.push(next_id);
                next_id += 1;
            }
            if ids.is_empty() {
                ids.push(next_id);
                next_id += 1;
            }
            let round_seed = seed ^ (step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let out = discover(&ids, window, 50_000, round_seed);
            // Convergence: every present tag discovered, none invented,
            // none double-booked.
            let mut got = out.order.clone();
            got.sort_unstable();
            let mut want = ids.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want, "step {}: discovery did not converge", step);
            // Accounting: at least one inventory round was paid for, and
            // the airtime covers the initial window.
            prop_assert!(out.rounds >= 1);
            prop_assert!(out.slots_used >= window);
            // Determinism: the same churned population and seed reproduce
            // the exchange exactly.
            prop_assert_eq!(out, discover(&ids, window, 50_000, round_seed));
        }
    }
}
