//! Property tests for the MAC.

use proptest::prelude::*;
use retroturbo_mac::{discover, protect, protected_bits, recover, CodingChoice, RateTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn protect_recover_round_trip(payload in proptest::collection::vec(any::<u8>(), 1..200),
                                  seed in 1u8..=0x7F,
                                  coded in any::<bool>()) {
        let coding = coded.then_some(CodingChoice { n: 255, k: 223 });
        let bits = protect(&payload, coding, seed);
        prop_assert_eq!(bits.len(), protected_bits(payload.len(), coding));
        prop_assert_eq!(recover(&bits, payload.len(), coding, seed).unwrap(), payload);
    }

    #[test]
    fn coded_recovery_survives_scattered_byte_errors(
        payload in proptest::collection::vec(any::<u8>(), 16..64),
        errs in proptest::collection::hash_set(0usize..255, 0..=16),
        flip in 1u8..=255,
    ) {
        let coding = Some(CodingChoice { n: 255, k: 223 });
        let mut bits = protect(&payload, coding, 0x5B);
        for &e in &errs {
            for b in 0..8 {
                bits[e * 8 + b] ^= (flip >> (b % 8)) & 1 == 1;
            }
        }
        prop_assert_eq!(recover(&bits, payload.len(), coding, 0x5B).unwrap(), payload);
    }

    #[test]
    fn discovery_always_completes(n in 1usize..60, window in 1usize..32, seed in any::<u64>()) {
        let ids: Vec<u32> = (0..n as u32).collect();
        let out = discover(&ids, window, 50_000, seed);
        let mut sorted = out.order.clone();
        sorted.sort();
        prop_assert_eq!(sorted, ids);
    }

    #[test]
    fn rate_selection_monotone(snr_lo in -20.0f64..70.0, d in 0.0f64..30.0) {
        let t = RateTable::profiled_default();
        let g_lo = t.select(snr_lo, 0.0).goodput();
        let g_hi = t.select(snr_lo + d, 0.0).goodput();
        prop_assert!(g_hi >= g_lo);
    }
}
