//! Frame protection and stop-and-wait ARQ (§4.4).
//!
//! Uplink payloads are scrambled (DC-stress avoidance), CRC-16-protected,
//! optionally Reed–Solomon coded, and retransmitted on CRC failure. The MAC
//! is master–slave: the reader polls, the tag answers in its TDMA slot, and
//! a failed CRC triggers a retransmission request in the next downlink
//! message (modelled here as an immediate retry).

use crate::rate_table::CodingChoice;
use retroturbo_coding::{check_crc16, frame_with_crc16, RsCode, Scrambler};

/// The abstract physical link the ARQ runs over: one shot of a bit vector
/// through the channel, returning what the receiver demodulated (always the
/// same length here — PHY symbol loss shows up as bit errors, not erasures).
pub trait BitPipe {
    /// Transmit `bits`; returns the demodulated bits, or `None` when the
    /// receiver missed the frame entirely (preamble failure).
    fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>>;
}

/// Protect a payload for transmission: CRC16 → scramble → optional RS.
/// Returns the bit stream to hand to the PHY.
pub fn protect(payload: &[u8], coding: Option<CodingChoice>, scramble_seed: u8) -> Vec<bool> {
    let mut framed = frame_with_crc16(payload);
    // Scramble the whole frame (CRC included): a seed mismatch then fails
    // the CRC instead of silently delivering garbage.
    Scrambler::new(scramble_seed).scramble_bytes(&mut framed);
    let bytes = match coding {
        None => framed,
        Some(c) => {
            let rs = RsCode::new(c.n, c.k);
            let mut out = Vec::with_capacity(framed.len().div_ceil(c.k) * c.n);
            for chunk in framed.chunks(c.k) {
                let mut msg = chunk.to_vec();
                msg.resize(c.k, 0); // zero-pad the final block
                out.extend(rs.encode(&msg));
            }
            out
        }
    };
    retroturbo_coding::bytes_to_bits(&bytes)
}

/// Invert [`protect`]: RS-decode (if coded), descramble, CRC-check.
/// `payload_len` is the expected payload size in bytes.
/// Returns `None` if decoding or the CRC fails.
pub fn recover(
    bits: &[bool],
    payload_len: usize,
    coding: Option<CodingChoice>,
    scramble_seed: u8,
) -> Option<Vec<u8>> {
    let bytes = retroturbo_coding::bits_to_bytes(bits);
    let framed_len = payload_len + 2;
    let framed: Vec<u8> = match coding {
        None => {
            if bytes.len() < framed_len {
                return None;
            }
            bytes[..framed_len].to_vec()
        }
        Some(c) => {
            let rs = RsCode::new(c.n, c.k);
            let n_blocks = framed_len.div_ceil(c.k);
            if bytes.len() < n_blocks * c.n {
                return None;
            }
            let mut out = Vec::with_capacity(n_blocks * c.k);
            for b in 0..n_blocks {
                let block = &bytes[b * c.n..(b + 1) * c.n];
                let (msg, _) = rs.decode(block).ok()?;
                out.extend(msg);
            }
            out.truncate(framed_len);
            out
        }
    };
    let mut descrambled = framed;
    Scrambler::new(scramble_seed).scramble_bytes(&mut descrambled);
    Some(check_crc16(&descrambled)?.to_vec())
}

/// Number of PHY bits [`protect`] produces for a payload of `payload_len`
/// bytes under `coding`.
pub fn protected_bits(payload_len: usize, coding: Option<CodingChoice>) -> usize {
    let framed = payload_len + 2;
    let bytes = match coding {
        None => framed,
        Some(c) => framed.div_ceil(c.k) * c.n,
    };
    bytes * 8
}

/// Outcome of a stop-and-wait exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqStats {
    /// Transmission attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Whether the payload was eventually delivered.
    pub delivered: bool,
    /// Total PHY bits sent across all attempts.
    pub phy_bits_sent: usize,
}

/// Run stop-and-wait: retransmit until the CRC passes or `max_attempts` is
/// exhausted.
pub fn stop_and_wait<P: BitPipe>(
    pipe: &mut P,
    payload: &[u8],
    coding: Option<CodingChoice>,
    scramble_seed: u8,
    max_attempts: usize,
) -> ArqStats {
    let tx_bits = protect(payload, coding, scramble_seed);
    let mut stats = ArqStats {
        attempts: 0,
        delivered: false,
        phy_bits_sent: 0,
    };
    for _ in 0..max_attempts.max(1) {
        stats.attempts += 1;
        stats.phy_bits_sent += tx_bits.len();
        if let Some(rx_bits) = pipe.transmit(&tx_bits) {
            if let Some(got) = recover(&rx_bits, payload.len(), coding, scramble_seed) {
                if got == payload {
                    stats.delivered = true;
                    return stats;
                }
                // CRC collision with wrong payload is ~2^-16; treat as
                // delivery of corrupt data = failure, keep retrying.
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A pipe flipping each bit independently with probability `ber`.
    struct NoisyPipe {
        ber: f64,
        rng: StdRng,
    }

    impl NoisyPipe {
        fn new(ber: f64, seed: u64) -> Self {
            Self {
                ber,
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl BitPipe for NoisyPipe {
        fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>> {
            Some(
                bits.iter()
                    .map(|&b| b ^ (self.rng.gen::<f64>() < self.ber))
                    .collect(),
            )
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn protect_recover_round_trip_uncoded() {
        let p = payload(128);
        let bits = protect(&p, None, 0x5B);
        assert_eq!(bits.len(), protected_bits(128, None));
        assert_eq!(recover(&bits, 128, None, 0x5B).unwrap(), p);
    }

    #[test]
    fn protect_recover_round_trip_coded() {
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(128);
        let bits = protect(&p, Some(c), 0x11);
        assert_eq!(bits.len(), protected_bits(128, Some(c)));
        assert_eq!(recover(&bits, 128, Some(c), 0x11).unwrap(), p);
    }

    #[test]
    fn coding_corrects_symbol_errors() {
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(128);
        let mut bits = protect(&p, Some(c), 0x11);
        // Corrupt 10 whole bytes (10 RS symbols < t = 16).
        for k in 0..10 {
            for b in 0..8 {
                bits[k * 160 + b] ^= true;
            }
        }
        assert_eq!(recover(&bits, 128, Some(c), 0x11).unwrap(), p);
    }

    #[test]
    fn uncoded_detects_errors() {
        let p = payload(64);
        let mut bits = protect(&p, None, 0x11);
        bits[100] ^= true;
        assert!(recover(&bits, 64, None, 0x11).is_none());
    }

    #[test]
    fn wrong_scramble_seed_fails_crc() {
        let p = payload(32);
        let bits = protect(&p, None, 0x11);
        assert!(recover(&bits, 32, None, 0x2F).is_none());
    }

    #[test]
    fn stop_and_wait_clean_first_try() {
        let mut pipe = NoisyPipe::new(0.0, 1);
        let s = stop_and_wait(&mut pipe, &payload(128), None, 0x5B, 5);
        assert!(s.delivered);
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn stop_and_wait_retries_through_errors() {
        // BER 5e-3 on ~550 bits: ≈ 2.7 errors per try uncoded ⇒ needs
        // retries. Any single seed has a few-percent chance of a clean first
        // try, so aggregate over seeds: every run must deliver, and the
        // channel must force retries somewhere in the batch.
        let mut total_attempts = 0usize;
        for seed in 0..4 {
            let mut pipe = NoisyPipe::new(5e-3, seed);
            let s = stop_and_wait(&mut pipe, &payload(64), None, 0x5B, 50);
            assert!(
                s.delivered,
                "seed {seed}: never delivered in {} attempts",
                s.attempts
            );
            total_attempts += s.attempts;
        }
        assert!(total_attempts > 4, "suspiciously clean channel");
    }

    #[test]
    fn coded_needs_fewer_attempts_than_uncoded() {
        let mut att_unc = 0usize;
        let mut att_cod = 0usize;
        let c = CodingChoice { n: 255, k: 223 };
        for seed in 0..8 {
            let mut p1 = NoisyPipe::new(1.5e-3, seed);
            att_unc += stop_and_wait(&mut p1, &payload(128), None, 0x5B, 200).attempts;
            let mut p2 = NoisyPipe::new(1.5e-3, seed);
            att_cod += stop_and_wait(&mut p2, &payload(128), Some(c), 0x5B, 200).attempts;
        }
        assert!(
            att_cod < att_unc,
            "coded {att_cod} attempts vs uncoded {att_unc}"
        );
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut pipe = NoisyPipe::new(0.25, 9);
        let s = stop_and_wait(&mut pipe, &payload(64), None, 0x5B, 4);
        assert!(!s.delivered);
        assert_eq!(s.attempts, 4);
    }
}
