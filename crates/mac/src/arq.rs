//! Frame protection and stop-and-wait ARQ (§4.4).
//!
//! Uplink payloads are scrambled (DC-stress avoidance), CRC-16-protected,
//! optionally Reed–Solomon coded, and retransmitted on CRC failure. The MAC
//! is master–slave: the reader polls, the tag answers in its TDMA slot, and
//! a failed CRC triggers a retransmission request in the next downlink
//! message (modelled here as an immediate retry).

use crate::rate_table::CodingChoice;
use retroturbo_coding::{check_crc16, frame_with_crc16, RsCode, Scrambler};
use retroturbo_telemetry as telemetry;

/// The abstract physical link the ARQ runs over: one shot of a bit vector
/// through the channel, returning what the receiver demodulated (always the
/// same length).
///
/// Links whose receiver can localize damage (blocked or saturated PHY slots)
/// should also implement [`Self::transmit_with_quality`]; the per-bit
/// reliability mask it returns feeds the Reed–Solomon errors-and-erasures
/// decoder in [`recover_with_quality`], doubling the correction budget for
/// flagged losses.
pub trait BitPipe {
    /// Transmit `bits`; returns the demodulated bits, or `None` when the
    /// receiver missed the frame entirely (preamble failure).
    fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>>;

    /// Transmit `bits` and report per-bit confidence alongside: the second
    /// vector flags bits demodulated from low-confidence PHY slots
    /// (`true` = unreliable, candidate erasure). The default implementation
    /// marks everything reliable, so plain error-only links need not change.
    fn transmit_with_quality(&mut self, bits: &[bool]) -> Option<(Vec<bool>, Vec<bool>)> {
        self.transmit(bits).map(|rx| {
            let n = rx.len();
            (rx, vec![false; n])
        })
    }
}

/// Protect a payload for transmission: CRC16 → scramble → optional RS.
/// Returns the bit stream to hand to the PHY.
pub fn protect(payload: &[u8], coding: Option<CodingChoice>, scramble_seed: u8) -> Vec<bool> {
    let mut framed = frame_with_crc16(payload);
    // Scramble the whole frame (CRC included): a seed mismatch then fails
    // the CRC instead of silently delivering garbage.
    Scrambler::new(scramble_seed).scramble_bytes(&mut framed);
    let bytes = match coding {
        None => framed,
        Some(c) => {
            let rs = RsCode::new(c.n, c.k);
            let mut out = Vec::with_capacity(framed.len().div_ceil(c.k) * c.n);
            for chunk in framed.chunks(c.k) {
                let mut msg = chunk.to_vec();
                msg.resize(c.k, 0); // zero-pad the final block
                out.extend(rs.encode(&msg));
            }
            out
        }
    };
    retroturbo_coding::bytes_to_bits(&bytes)
}

/// What [`recover_with_quality`] observed while undoing the protection: the
/// decode margin the pass/fail interface of [`recover`] used to discard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverReport {
    /// The recovered payload.
    pub payload: Vec<u8>,
    /// Reed–Solomon symbol errors corrected across all blocks (0 uncoded).
    pub symbols_corrected: usize,
    /// Erased symbols the RS decoder actually had to restore.
    pub erasures_filled: usize,
    /// Codeword symbols the PHY flagged as unreliable (whether or not they
    /// turned out damaged).
    pub erasures_flagged: usize,
}

impl RecoverReport {
    /// Publish this report's decode-margin counters into the telemetry
    /// registry under `prefix` (e.g. `mac.recover` or
    /// `robustness.blockage_duty`). No-op without the `telemetry` feature.
    pub fn publish(&self, prefix: &str) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::counter_add(
            &format!("{prefix}.symbols_corrected"),
            self.symbols_corrected as u64,
        );
        telemetry::counter_add(
            &format!("{prefix}.erasures_filled"),
            self.erasures_filled as u64,
        );
        telemetry::counter_add(
            &format!("{prefix}.erasures_flagged"),
            self.erasures_flagged as u64,
        );
    }
}

/// Invert [`protect`]: RS-decode (if coded), descramble, CRC-check.
/// `payload_len` is the expected payload size in bytes.
/// Returns `None` if decoding or the CRC fails.
pub fn recover(
    bits: &[bool],
    payload_len: usize,
    coding: Option<CodingChoice>,
    scramble_seed: u8,
) -> Option<Vec<u8>> {
    recover_with_quality(bits, &[], payload_len, coding, scramble_seed).map(|r| r.payload)
}

/// [`recover`] with per-bit reliability: bits flagged `true` in `unreliable`
/// came from low-confidence PHY slots. A codeword symbol containing any
/// flagged bit becomes an erasure for the Reed–Solomon decoder, which then
/// corrects `f` erasures plus `e` errors whenever `2e + f ≤ n − k`. When a
/// block's flag count exceeds the erasure budget, or the erasure decode
/// fails (over-flagging can exhaust the budget spurious flags included), the
/// block falls back to the errors-only decoder rather than giving up.
///
/// `unreliable` may be shorter than `bits`; missing entries count as
/// reliable.
pub fn recover_with_quality(
    bits: &[bool],
    unreliable: &[bool],
    payload_len: usize,
    coding: Option<CodingChoice>,
    scramble_seed: u8,
) -> Option<RecoverReport> {
    let r = recover_with_quality_impl(bits, unreliable, payload_len, coding, scramble_seed);
    match &r {
        Some(rep) => {
            telemetry::counter_inc("mac.recover.ok");
            rep.publish("mac.recover");
        }
        None => telemetry::counter_inc("mac.recover.fail"),
    }
    r
}

fn recover_with_quality_impl(
    bits: &[bool],
    unreliable: &[bool],
    payload_len: usize,
    coding: Option<CodingChoice>,
    scramble_seed: u8,
) -> Option<RecoverReport> {
    let bytes = retroturbo_coding::bits_to_bytes(bits);
    let byte_flagged = |i: usize| (8 * i..8 * i + 8).any(|j| unreliable.get(j) == Some(&true));
    let framed_len = payload_len + 2;
    let mut symbols_corrected = 0usize;
    let mut erasures_filled = 0usize;
    let mut erasures_flagged = 0usize;
    let framed: Vec<u8> = match coding {
        None => {
            if bytes.len() < framed_len {
                return None;
            }
            erasures_flagged = (0..framed_len).filter(|&i| byte_flagged(i)).count();
            bytes[..framed_len].to_vec()
        }
        Some(c) => {
            let rs = RsCode::new(c.n, c.k);
            let n_blocks = framed_len.div_ceil(c.k);
            if bytes.len() < n_blocks * c.n {
                return None;
            }
            let mut out = Vec::with_capacity(n_blocks * c.k);
            for b in 0..n_blocks {
                let block = &bytes[b * c.n..(b + 1) * c.n];
                let erasures: Vec<usize> =
                    (0..c.n).filter(|&i| byte_flagged(b * c.n + i)).collect();
                erasures_flagged += erasures.len();
                let attempt = if erasures.is_empty() || erasures.len() > c.n - c.k {
                    None
                } else {
                    rs.decode_with_erasures(block, &erasures).ok()
                };
                match attempt {
                    Some(d) => {
                        symbols_corrected += d.errors_corrected;
                        erasures_filled += d.erasures_filled;
                        out.extend(d.msg);
                    }
                    None => {
                        // Errors-only fallback: no flags, too many flags, or
                        // an erasure decode the flags talked out of budget.
                        let (msg, fixed) = rs.decode(block).ok()?;
                        symbols_corrected += fixed;
                        out.extend(msg);
                    }
                }
            }
            out.truncate(framed_len);
            out
        }
    };
    let mut descrambled = framed;
    Scrambler::new(scramble_seed).scramble_bytes(&mut descrambled);
    Some(RecoverReport {
        payload: check_crc16(&descrambled)?.to_vec(),
        symbols_corrected,
        erasures_filled,
        erasures_flagged,
    })
}

/// Number of PHY bits [`protect`] produces for a payload of `payload_len`
/// bytes under `coding`.
pub fn protected_bits(payload_len: usize, coding: Option<CodingChoice>) -> usize {
    let framed = payload_len + 2;
    let bytes = match coding {
        None => framed,
        Some(c) => framed.div_ceil(c.k) * c.n,
    };
    bytes * 8
}

/// Decode margin observed on one stop-and-wait attempt: how close the coded
/// link came to losing the frame, not just whether it did. Rate adaptation
/// can read a rising `symbols_corrected` as vanishing margin and back off
/// before the first outright loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttemptInfo {
    /// Whether the RS/descramble/CRC chain produced the correct payload.
    pub delivered: bool,
    /// RS symbol errors corrected on this attempt (0 uncoded or undecodable).
    pub symbols_corrected: usize,
    /// Erased symbols the RS decoder restored on this attempt.
    pub erasures_filled: usize,
    /// Codeword symbols the PHY flagged as unreliable on this attempt.
    pub erasures_flagged: usize,
}

/// Outcome of a stop-and-wait exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArqStats {
    /// Transmission attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Whether the payload was eventually delivered.
    pub delivered: bool,
    /// Total PHY bits sent across all attempts.
    pub phy_bits_sent: usize,
    /// Per-attempt decode margin, in attempt order (one entry per attempt).
    pub attempt_info: Vec<AttemptInfo>,
}

impl ArqStats {
    /// Total RS symbols corrected across all attempts.
    pub fn symbols_corrected(&self) -> usize {
        self.attempt_info.iter().map(|a| a.symbols_corrected).sum()
    }

    /// Total erased symbols restored across all attempts.
    pub fn erasures_filled(&self) -> usize {
        self.attempt_info.iter().map(|a| a.erasures_filled).sum()
    }

    /// Total codeword symbols the PHY flagged across all attempts.
    pub fn erasures_flagged(&self) -> usize {
        self.attempt_info.iter().map(|a| a.erasures_flagged).sum()
    }

    /// Publish this exchange's outcome into the telemetry registry under
    /// `prefix` (e.g. `arq` or `robustness.clock_ppm`): attempt/delivery
    /// counters, PHY bits sent, and the aggregated decode margin. No-op
    /// without the `telemetry` feature.
    pub fn publish(&self, prefix: &str) {
        if !telemetry::enabled() {
            return;
        }
        telemetry::counter_inc(&format!("{prefix}.exchanges"));
        telemetry::counter_add(&format!("{prefix}.attempts"), self.attempts as u64);
        telemetry::counter_add(&format!("{prefix}.delivered"), self.delivered as u64);
        telemetry::counter_add(
            &format!("{prefix}.phy_bits_sent"),
            self.phy_bits_sent as u64,
        );
        telemetry::counter_add(
            &format!("{prefix}.symbols_corrected"),
            self.symbols_corrected() as u64,
        );
        telemetry::counter_add(
            &format!("{prefix}.erasures_filled"),
            self.erasures_filled() as u64,
        );
        telemetry::counter_add(
            &format!("{prefix}.erasures_flagged"),
            self.erasures_flagged() as u64,
        );
        telemetry::observe(
            &format!("{prefix}.attempts_per_exchange"),
            self.attempts as f64,
        );
    }
}

/// Run stop-and-wait: retransmit until the CRC passes or `max_attempts` is
/// exhausted. Erasure information from the PHY (via
/// [`BitPipe::transmit_with_quality`]) flows into the Reed–Solomon decode of
/// every attempt, and each attempt's decode margin is recorded in
/// [`ArqStats::attempt_info`].
pub fn stop_and_wait<P: BitPipe>(
    pipe: &mut P,
    payload: &[u8],
    coding: Option<CodingChoice>,
    scramble_seed: u8,
    max_attempts: usize,
) -> ArqStats {
    let tx_bits = protect(payload, coding, scramble_seed);
    let mut stats = ArqStats {
        attempts: 0,
        delivered: false,
        phy_bits_sent: 0,
        attempt_info: Vec::new(),
    };
    for _ in 0..max_attempts.max(1) {
        stats.attempts += 1;
        stats.phy_bits_sent += tx_bits.len();
        let mut info = AttemptInfo::default();
        if let Some((rx_bits, unreliable)) = pipe.transmit_with_quality(&tx_bits) {
            if let Some(rep) =
                recover_with_quality(&rx_bits, &unreliable, payload.len(), coding, scramble_seed)
            {
                info.symbols_corrected = rep.symbols_corrected;
                info.erasures_filled = rep.erasures_filled;
                info.erasures_flagged = rep.erasures_flagged;
                if rep.payload == payload {
                    info.delivered = true;
                    stats.delivered = true;
                    stats.attempt_info.push(info);
                    stats.publish("arq");
                    return stats;
                }
                // CRC collision with wrong payload is ~2^-16; treat as
                // delivery of corrupt data = failure, keep retrying.
            }
        }
        stats.attempt_info.push(info);
    }
    stats.publish("arq");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;

    /// A pipe flipping each bit independently with probability `ber`.
    struct NoisyPipe {
        ber: f64,
        rng: StdRng,
    }

    impl NoisyPipe {
        fn new(ber: f64, seed: u64) -> Self {
            Self {
                ber,
                rng: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl BitPipe for NoisyPipe {
        fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>> {
            Some(
                bits.iter()
                    .map(|&b| b ^ (self.rng.gen::<f64>() < self.ber))
                    .collect(),
            )
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn protect_recover_round_trip_uncoded() {
        let p = payload(128);
        let bits = protect(&p, None, 0x5B);
        assert_eq!(bits.len(), protected_bits(128, None));
        assert_eq!(recover(&bits, 128, None, 0x5B).unwrap(), p);
    }

    #[test]
    fn protect_recover_round_trip_coded() {
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(128);
        let bits = protect(&p, Some(c), 0x11);
        assert_eq!(bits.len(), protected_bits(128, Some(c)));
        assert_eq!(recover(&bits, 128, Some(c), 0x11).unwrap(), p);
    }

    #[test]
    fn coding_corrects_symbol_errors() {
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(128);
        let mut bits = protect(&p, Some(c), 0x11);
        // Corrupt 10 whole bytes (10 RS symbols < t = 16).
        for k in 0..10 {
            for b in 0..8 {
                bits[k * 160 + b] ^= true;
            }
        }
        assert_eq!(recover(&bits, 128, Some(c), 0x11).unwrap(), p);
    }

    #[test]
    fn uncoded_detects_errors() {
        let p = payload(64);
        let mut bits = protect(&p, None, 0x11);
        bits[100] ^= true;
        assert!(recover(&bits, 64, None, 0x11).is_none());
    }

    #[test]
    fn wrong_scramble_seed_fails_crc() {
        let p = payload(32);
        let bits = protect(&p, None, 0x11);
        assert!(recover(&bits, 32, None, 0x2F).is_none());
    }

    #[test]
    fn stop_and_wait_clean_first_try() {
        let mut pipe = NoisyPipe::new(0.0, 1);
        let s = stop_and_wait(&mut pipe, &payload(128), None, 0x5B, 5);
        assert!(s.delivered);
        assert_eq!(s.attempts, 1);
    }

    #[test]
    fn stop_and_wait_retries_through_errors() {
        // BER 5e-3 on ~550 bits: ≈ 2.7 errors per try uncoded ⇒ needs
        // retries. Any single seed has a few-percent chance of a clean first
        // try, so aggregate over seeds: every run must deliver, and the
        // channel must force retries somewhere in the batch.
        let mut total_attempts = 0usize;
        for seed in 0..4 {
            let mut pipe = NoisyPipe::new(5e-3, seed);
            let s = stop_and_wait(&mut pipe, &payload(64), None, 0x5B, 50);
            assert!(
                s.delivered,
                "seed {seed}: never delivered in {} attempts",
                s.attempts
            );
            total_attempts += s.attempts;
        }
        assert!(total_attempts > 4, "suspiciously clean channel");
    }

    #[test]
    fn coded_needs_fewer_attempts_than_uncoded() {
        let mut att_unc = 0usize;
        let mut att_cod = 0usize;
        let c = CodingChoice { n: 255, k: 223 };
        for seed in 0..8 {
            let mut p1 = NoisyPipe::new(1.5e-3, seed);
            att_unc += stop_and_wait(&mut p1, &payload(128), None, 0x5B, 200).attempts;
            let mut p2 = NoisyPipe::new(1.5e-3, seed);
            att_cod += stop_and_wait(&mut p2, &payload(128), Some(c), 0x5B, 200).attempts;
        }
        assert!(
            att_cod < att_unc,
            "coded {att_cod} attempts vs uncoded {att_unc}"
        );
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let mut pipe = NoisyPipe::new(0.25, 9);
        let s = stop_and_wait(&mut pipe, &payload(64), None, 0x5B, 4);
        assert!(!s.delivered);
        assert_eq!(s.attempts, 4);
        assert_eq!(s.attempt_info.len(), 4);
        assert!(s.attempt_info.iter().all(|a| !a.delivered));
    }

    /// A pipe that erases whole spans: bits inside the span are zeroed and
    /// flagged unreliable — the shape a blockage burst produces.
    struct ErasingPipe {
        spans: Vec<(usize, usize)>,
    }

    impl BitPipe for ErasingPipe {
        fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>> {
            self.transmit_with_quality(bits).map(|(b, _)| b)
        }

        fn transmit_with_quality(&mut self, bits: &[bool]) -> Option<(Vec<bool>, Vec<bool>)> {
            let mut out = bits.to_vec();
            let mut bad = vec![false; bits.len()];
            for &(start, len) in &self.spans {
                for i in start..(start + len).min(bits.len()) {
                    out[i] = false;
                    bad[i] = true;
                }
            }
            Some((out, bad))
        }
    }

    #[test]
    fn erasure_flags_double_the_correction_budget() {
        // RS(255, 223): t = 16 unflagged errors, but up to 32 erasures.
        // Erase 24 whole codeword symbols — fatal for the errors-only
        // decoder, routine with flags.
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(128);
        let bits = protect(&p, Some(c), 0x5B);
        // All spans inside the 130 framed data bytes, so every erased symbol
        // is a real corruption (the zero-padding region would erase to
        // itself and flatter the errors-only decoder).
        let spans: Vec<(usize, usize)> = (0..24).map(|k| (k * 5 * 8, 8)).collect();
        let mut pipe = ErasingPipe {
            spans: spans.clone(),
        };
        let (rx, bad) = pipe.transmit_with_quality(&bits).unwrap();

        // Errors-only path fails (it sees up to 24 > t symbol errors)…
        assert!(recover(&rx, 128, Some(c), 0x5B).is_none());
        // …the erasure-aware path recovers and reports the margin.
        let rep = recover_with_quality(&rx, &bad, 128, Some(c), 0x5B).unwrap();
        assert_eq!(rep.payload, p);
        assert_eq!(rep.erasures_flagged, 24);
        assert!(
            rep.erasures_filled > 0 && rep.erasures_filled <= 24,
            "filled {}",
            rep.erasures_filled
        );
        assert_eq!(rep.symbols_corrected, 0);

        // End-to-end through stop_and_wait: first try, margin recorded.
        let s = stop_and_wait(&mut pipe, &p, Some(c), 0x5B, 3);
        assert!(s.delivered);
        assert_eq!(s.attempts, 1);
        assert_eq!(s.attempt_info[0].erasures_flagged, 24);
        assert_eq!(s.erasures_filled(), s.attempt_info[0].erasures_filled);
    }

    #[test]
    fn over_flagging_falls_back_to_errors_only() {
        // Flag 40 symbols (> n − k = 32) with only 2 actually damaged: the
        // erasure budget is blown, but the errors-only fallback still
        // recovers the frame.
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(64);
        let mut bits = protect(&p, Some(c), 0x11);
        for k in 0..2 {
            for b in 0..8 {
                bits[k * 40 * 8 + b] ^= true;
            }
        }
        let bad: Vec<bool> = (0..bits.len()).map(|i| (i / 8) % 6 == 0).collect();
        assert!(bad.chunks(8).filter(|ch| ch[0]).count() > 32);
        let rep = recover_with_quality(&bits, &bad, 64, Some(c), 0x11).unwrap();
        assert_eq!(rep.payload, p);
        assert_eq!(rep.symbols_corrected, 2);
        assert_eq!(rep.erasures_filled, 0);
    }

    #[test]
    fn corrected_symbol_margin_is_surfaced_per_attempt() {
        // Damage exactly 5 codeword symbols (unflagged): the delivered
        // attempt must report exactly that correction count.
        struct FlippingPipe;
        impl BitPipe for FlippingPipe {
            fn transmit(&mut self, bits: &[bool]) -> Option<Vec<bool>> {
                let mut out = bits.to_vec();
                for k in 0..5 {
                    out[k * 41 * 8] ^= true; // one bit in each of 5 distinct bytes
                }
                Some(out)
            }
        }
        let c = CodingChoice { n: 255, k: 223 };
        let s = stop_and_wait(&mut FlippingPipe, &payload(128), Some(c), 0x5B, 3);
        assert!(s.delivered);
        assert_eq!(s.attempts, 1);
        let first = &s.attempt_info[0];
        assert!(first.delivered);
        assert_eq!(first.symbols_corrected, 5);
        assert_eq!(first.erasures_flagged, 0);
        assert_eq!(s.symbols_corrected(), 5);
        assert_eq!(s.erasures_filled(), 0);
    }

    #[test]
    fn recover_with_quality_matches_recover_when_unflagged() {
        let c = CodingChoice { n: 255, k: 223 };
        let p = payload(96);
        let mut bits = protect(&p, Some(c), 0x2A);
        for k in 0..5 {
            bits[k * 320] ^= true;
        }
        let plain = recover(&bits, 96, Some(c), 0x2A).unwrap();
        let rep = recover_with_quality(&bits, &[], 96, Some(c), 0x2A).unwrap();
        assert_eq!(plain, rep.payload);
        assert_eq!(rep.erasures_flagged, 0);
        assert_eq!(rep.erasures_filled, 0);
    }
}
