//! SNR → (bit rate, coding rate) adaptation table (§4.4).
//!
//! The reader piggybacks a suggested bit rate and coding rate on the
//! downlink, chosen from a table profiled against measured goodput-vs-SNR
//! curves ("a database profiled with real world experimental data"). The
//! default table below is profiled from this repository's own Fig. 18a/18b
//! sweeps; `retroturbo-sim` regenerates it.

use retroturbo_telemetry as telemetry;

/// Reed–Solomon coding choice for a rate option.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodingChoice {
    /// Codeword length n (symbols).
    pub n: usize,
    /// Message length k (symbols).
    pub k: usize,
}

impl CodingChoice {
    /// Code rate k/n.
    pub fn rate(&self) -> f64 {
        self.k as f64 / self.n as f64
    }
}

/// One selectable PHY operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateOption {
    /// Human-readable label (e.g. "8kbps").
    pub name: &'static str,
    /// Raw PHY bit rate, bit/s.
    pub bit_rate: f64,
    /// Minimum SNR (dB) at which this option achieves ≤1% BER.
    pub min_snr_db: f64,
    /// Optional RS coding (None = uncoded).
    pub coding: Option<CodingChoice>,
}

impl RateOption {
    /// Effective goodput at the option's operating point (bit rate × code
    /// rate), ignoring retransmissions.
    pub fn goodput(&self) -> f64 {
        self.bit_rate * self.coding.map_or(1.0, |c| c.rate())
    }
}

/// An ordered set of operating points (descending goodput).
#[derive(Debug, Clone)]
pub struct RateTable {
    options: Vec<RateOption>,
}

impl RateTable {
    /// Build from options; they are sorted by descending goodput.
    ///
    /// # Panics
    /// Panics if empty.
    pub fn new(mut options: Vec<RateOption>) -> Self {
        assert!(!options.is_empty(), "RateTable: need at least one option");
        options.sort_by(|a, b| b.goodput().total_cmp(&a.goodput()));
        Self { options }
    }

    /// The default table: thresholds profiled with the repository's Fig. 18a
    /// emulation sweep (see EXPERIMENTS.md), shaped like the paper's Tab. 3.
    pub fn profiled_default() -> Self {
        // Mirrors the paper's option set: error-correction variants on the
        // top rate (its Fig. 18b study), plain rates below. Thresholds from
        // this repository's Fig. 18a sweep.
        Self::new(vec![
            RateOption {
                name: "32kbps",
                bit_rate: 32_000.0,
                min_snr_db: 48.5,
                coding: None,
            },
            RateOption {
                name: "32kbps+rs251",
                bit_rate: 32_000.0,
                min_snr_db: 46.5,
                coding: Some(CodingChoice { n: 255, k: 251 }),
            },
            RateOption {
                name: "32kbps+rs223",
                bit_rate: 32_000.0,
                min_snr_db: 44.0,
                coding: Some(CodingChoice { n: 255, k: 223 }),
            },
            RateOption {
                name: "16kbps",
                bit_rate: 16_000.0,
                min_snr_db: 38.0,
                coding: None,
            },
            RateOption {
                name: "8kbps",
                bit_rate: 8_000.0,
                min_snr_db: 23.5,
                coding: None,
            },
            RateOption {
                name: "4kbps",
                bit_rate: 4_000.0,
                min_snr_db: 16.0,
                coding: None,
            },
            RateOption {
                name: "1kbps",
                bit_rate: 1_000.0,
                min_snr_db: -1.5,
                coding: None,
            },
            RateOption {
                name: "1kbps+rs127",
                bit_rate: 1_000.0,
                min_snr_db: -6.0,
                coding: Some(CodingChoice { n: 255, k: 127 }),
            },
        ])
    }

    /// All options, descending goodput.
    pub fn options(&self) -> &[RateOption] {
        &self.options
    }

    /// Highest-goodput option usable at `snr_db` (with `margin_db` backoff),
    /// falling back to the most robust option.
    pub fn select(&self, snr_db: f64, margin_db: f64) -> RateOption {
        let choice = self
            .options
            .iter()
            .find(|o| snr_db - margin_db >= o.min_snr_db)
            .copied()
            .unwrap_or_else(|| *self.options.last().unwrap());
        telemetry::counter_inc("mac.rate_decisions");
        if telemetry::enabled() {
            telemetry::counter_inc(&format!("mac.rate.{}", choice.name));
            telemetry::observe("mac.rate_goodput", choice.goodput());
            // Margin the decision leaves against the option's threshold.
            telemetry::observe(
                "mac.rate_snr_headroom_db",
                snr_db - margin_db - choice.min_snr_db,
            );
        }
        choice
    }

    /// The most robust (lowest-threshold) option — the fixed-rate baseline
    /// assigns this to everyone (Fig. 18c's comparison).
    pub fn most_robust(&self) -> RateOption {
        *self
            .options
            .iter()
            .min_by(|a, b| a.min_snr_db.total_cmp(&b.min_snr_db))
            .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_by_snr() {
        let t = RateTable::profiled_default();
        assert_eq!(t.select(60.0, 0.0).name, "32kbps");
        assert_eq!(t.select(30.0, 0.0).name, "8kbps");
        assert_eq!(t.select(10.0, 0.0).name, "1kbps");
    }

    #[test]
    fn margin_backs_off() {
        let t = RateTable::profiled_default();
        let no_margin = t.select(29.0, 0.0);
        let with_margin = t.select(29.0, 3.0);
        assert!(with_margin.goodput() <= no_margin.goodput());
    }

    #[test]
    fn hopeless_snr_falls_back_to_most_robust() {
        let t = RateTable::profiled_default();
        let o = t.select(-30.0, 0.0);
        assert_eq!(o.name, t.most_robust().name);
    }

    #[test]
    fn options_sorted_by_goodput() {
        let t = RateTable::profiled_default();
        for w in t.options().windows(2) {
            assert!(w[0].goodput() >= w[1].goodput());
        }
    }

    #[test]
    fn coded_goodput_discounted() {
        let o = RateOption {
            name: "x",
            bit_rate: 32_000.0,
            min_snr_db: 0.0,
            coding: Some(CodingChoice { n: 255, k: 251 }),
        };
        // 1/64 of max throughput sacrificed (paper, Fig. 18b).
        assert!((o.goodput() - 32_000.0 * 251.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_selection_in_snr() {
        let t = RateTable::profiled_default();
        let mut prev = 0.0;
        for snr in (-10..70).step_by(2) {
            let g = t.select(snr as f64, 0.0).goodput();
            assert!(g >= prev, "goodput dropped at {snr} dB");
            prev = g;
        }
    }
}
