//! TDMA uplink scheduling (§4.4).
//!
//! After discovery the reader runs a simple master–slave TDMA super-frame:
//! each registered tag owns one uplink slot per round, sized for its
//! assigned rate option (lower rates need proportionally more airtime for
//! the same payload). The scheduler tracks per-tag airtime and computes the
//! aggregate and per-tag throughput the Fig. 18c experiment reports.

use crate::rate_table::RateOption;

/// A registered tag with its assigned operating point.
#[derive(Debug, Clone)]
pub struct TagAssignment {
    /// Tag identifier.
    pub id: u32,
    /// Uplink SNR the reader measured for this tag, dB.
    pub snr_db: f64,
    /// Assigned rate option.
    pub rate: RateOption,
}

/// One scheduled uplink transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledSlot {
    /// Owning tag.
    pub tag_id: u32,
    /// Slot start time, seconds from super-frame start.
    pub start: f64,
    /// Slot duration, seconds.
    pub duration: f64,
}

/// Build one TDMA super-frame: every tag sends `payload_bits` of protected
/// payload at its own rate; slots are laid back-to-back plus `guard`
/// seconds. Returns the schedule and the super-frame duration.
pub fn build_superframe(
    tags: &[TagAssignment],
    payload_bits: usize,
    guard: f64,
) -> (Vec<ScheduledSlot>, f64) {
    let mut t = 0.0;
    let mut slots = Vec::with_capacity(tags.len());
    for tag in tags {
        let airtime = payload_bits as f64 / tag.rate.goodput();
        slots.push(ScheduledSlot {
            tag_id: tag.id,
            start: t,
            duration: airtime,
        });
        t += airtime + guard;
    }
    (slots, t)
}

/// Apportion `total` uplink frames across tags proportionally to `weights`
/// using the largest-remainder method: each tag gets `⌊total·wᵢ/Σw⌋` frames,
/// and the leftover frames go to the largest fractional remainders (ties
/// broken toward the lower index). Weights must be finite and non-negative
/// with a positive sum; the result always sums to exactly `total`, and a
/// strictly larger weight never receives fewer frames.
///
/// # Panics
/// Panics on an empty weight vector, a non-finite or negative weight, or an
/// all-zero weight vector.
pub fn apportion_frames(weights: &[f64], total: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "apportion_frames: no weights");
    let sum: f64 = weights
        .iter()
        .map(|&w| {
            assert!(
                w.is_finite() && w >= 0.0,
                "apportion_frames: weight {w} must be finite and >= 0"
            );
            w
        })
        .sum();
    assert!(sum > 0.0, "apportion_frames: weights sum to zero");
    let mut counts: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let quota = total as f64 * w / sum;
        let floor = quota.floor() as usize;
        counts.push(floor);
        assigned += floor;
        remainders.push((quota - floor as f64, i));
    }
    // Largest remainder first; equal remainders favour the lower index.
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter().take(total.saturating_sub(assigned)) {
        counts[i] += 1;
    }
    counts
}

/// Build a priority-weighted TDMA super-frame: `total_frames` uplink slots
/// are apportioned across tags by [`apportion_frames`], then laid out
/// round-robin (one frame per still-owed tag per pass, in tag order) so a
/// heavily weighted tag does not monopolise the head of the super-frame.
/// Each slot carries `payload_bits` at its tag's rate plus `guard` seconds.
/// Returns the schedule and the super-frame duration.
pub fn build_weighted_superframe(
    tags: &[TagAssignment],
    payload_bits: usize,
    guard: f64,
    weights: &[f64],
    total_frames: usize,
) -> (Vec<ScheduledSlot>, f64) {
    assert_eq!(
        tags.len(),
        weights.len(),
        "build_weighted_superframe: tags/weights length mismatch"
    );
    let mut owed = apportion_frames(weights, total_frames);
    let mut t = 0.0;
    let mut slots = Vec::with_capacity(total_frames);
    while slots.len() < total_frames {
        for (tag, owe) in tags.iter().zip(owed.iter_mut()) {
            if *owe == 0 {
                continue;
            }
            *owe -= 1;
            let airtime = payload_bits as f64 / tag.rate.goodput();
            slots.push(ScheduledSlot {
                tag_id: tag.id,
                start: t,
                duration: airtime,
            });
            t += airtime + guard;
        }
    }
    (slots, t)
}

/// Mean per-tag goodput over a super-frame where every tag delivers
/// `payload_bits` (assuming its operating point holds): total delivered bits
/// divided by tags and super-frame duration.
pub fn mean_throughput(tags: &[TagAssignment], payload_bits: usize, guard: f64) -> f64 {
    if tags.is_empty() {
        return 0.0;
    }
    let (_, dur) = build_superframe(tags, payload_bits, guard);
    (tags.len() * payload_bits) as f64 / dur / tags.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate_table::RateTable;

    fn tag(id: u32, snr: f64) -> TagAssignment {
        let t = RateTable::profiled_default();
        TagAssignment {
            id,
            snr_db: snr,
            rate: t.select(snr, 0.0),
        }
    }

    #[test]
    fn slots_do_not_overlap() {
        let tags = vec![tag(1, 60.0), tag(2, 30.0), tag(3, 10.0)];
        let (slots, dur) = build_superframe(&tags, 1024, 1e-3);
        for w in slots.windows(2) {
            assert!(w[0].start + w[0].duration <= w[1].start + 1e-12);
        }
        let last = slots.last().unwrap();
        assert!(last.start + last.duration <= dur);
    }

    #[test]
    fn slower_tags_get_longer_slots() {
        let tags = vec![tag(1, 60.0), tag(2, 5.0)];
        let (slots, _) = build_superframe(&tags, 1024, 0.0);
        assert!(slots[1].duration > slots[0].duration * 4.0);
    }

    #[test]
    fn single_fast_tag_throughput() {
        let tags = vec![tag(1, 60.0)];
        let tp = mean_throughput(&tags, 32_000, 0.0);
        assert!((tp - 32_000.0).abs() < 1.0, "throughput {tp}");
    }

    #[test]
    fn mixed_network_bounded_by_slowest() {
        // One slow tag inflates everyone's super-frame.
        let fast_only = mean_throughput(&[tag(1, 60.0), tag(2, 60.0)], 8_000, 0.0);
        let with_slow = mean_throughput(&[tag(1, 60.0), tag(2, -10.0)], 8_000, 0.0);
        assert!(with_slow < fast_only / 4.0);
    }

    #[test]
    fn empty_network_zero() {
        assert_eq!(mean_throughput(&[], 100, 0.0), 0.0);
    }

    #[test]
    fn apportion_sums_and_follows_weights() {
        let counts = apportion_frames(&[3.0, 1.0], 8);
        assert_eq!(counts, vec![6, 2]);
        let counts = apportion_frames(&[1.0, 1.0, 1.0], 10);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        // Equal weights: the odd frame goes to the lowest index.
        assert_eq!(counts, vec![4, 3, 3]);
    }

    #[test]
    fn apportion_zero_weight_tag_gets_nothing() {
        assert_eq!(apportion_frames(&[0.0, 1.0], 5), vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "weights sum to zero")]
    fn apportion_rejects_all_zero_weights() {
        let _ = apportion_frames(&[0.0, 0.0], 4);
    }

    #[test]
    fn weighted_superframe_interleaves_and_respects_counts() {
        let tags = vec![tag(1, 60.0), tag(2, 30.0)];
        let (slots, dur) = build_weighted_superframe(&tags, 1024, 1e-3, &[3.0, 1.0], 4);
        assert_eq!(slots.len(), 4);
        let c1 = slots.iter().filter(|s| s.tag_id == 1).count();
        let c2 = slots.iter().filter(|s| s.tag_id == 2).count();
        assert_eq!((c1, c2), (3, 1));
        // Round-robin layout: tag 2's single frame sits in the first pass.
        assert_eq!(slots[1].tag_id, 2);
        for w in slots.windows(2) {
            assert!(w[0].start + w[0].duration <= w[1].start + 1e-12);
        }
        let last = slots.last().unwrap();
        assert!(last.start + last.duration <= dur);
    }

    #[test]
    fn weighted_superframe_equal_weights_matches_flat_counts() {
        let tags = vec![tag(1, 60.0), tag(2, 30.0), tag(3, 10.0)];
        let (slots, _) = build_weighted_superframe(&tags, 512, 0.0, &[1.0, 1.0, 1.0], 6);
        for id in 1..=3u32 {
            assert_eq!(slots.iter().filter(|s| s.tag_id == id).count(), 2);
        }
    }
}
