//! TDMA uplink scheduling (§4.4).
//!
//! After discovery the reader runs a simple master–slave TDMA super-frame:
//! each registered tag owns one uplink slot per round, sized for its
//! assigned rate option (lower rates need proportionally more airtime for
//! the same payload). The scheduler tracks per-tag airtime and computes the
//! aggregate and per-tag throughput the Fig. 18c experiment reports.

use crate::rate_table::RateOption;

/// A registered tag with its assigned operating point.
#[derive(Debug, Clone)]
pub struct TagAssignment {
    /// Tag identifier.
    pub id: u32,
    /// Uplink SNR the reader measured for this tag, dB.
    pub snr_db: f64,
    /// Assigned rate option.
    pub rate: RateOption,
}

/// One scheduled uplink transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledSlot {
    /// Owning tag.
    pub tag_id: u32,
    /// Slot start time, seconds from super-frame start.
    pub start: f64,
    /// Slot duration, seconds.
    pub duration: f64,
}

/// Build one TDMA super-frame: every tag sends `payload_bits` of protected
/// payload at its own rate; slots are laid back-to-back plus `guard`
/// seconds. Returns the schedule and the super-frame duration.
pub fn build_superframe(
    tags: &[TagAssignment],
    payload_bits: usize,
    guard: f64,
) -> (Vec<ScheduledSlot>, f64) {
    let mut t = 0.0;
    let mut slots = Vec::with_capacity(tags.len());
    for tag in tags {
        let airtime = payload_bits as f64 / tag.rate.goodput();
        slots.push(ScheduledSlot {
            tag_id: tag.id,
            start: t,
            duration: airtime,
        });
        t += airtime + guard;
    }
    (slots, t)
}

/// Mean per-tag goodput over a super-frame where every tag delivers
/// `payload_bits` (assuming its operating point holds): total delivered bits
/// divided by tags and super-frame duration.
pub fn mean_throughput(tags: &[TagAssignment], payload_bits: usize, guard: f64) -> f64 {
    if tags.is_empty() {
        return 0.0;
    }
    let (_, dur) = build_superframe(tags, payload_bits, guard);
    (tags.len() * payload_bits) as f64 / dur / tags.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate_table::RateTable;

    fn tag(id: u32, snr: f64) -> TagAssignment {
        let t = RateTable::profiled_default();
        TagAssignment {
            id,
            snr_db: snr,
            rate: t.select(snr, 0.0),
        }
    }

    #[test]
    fn slots_do_not_overlap() {
        let tags = vec![tag(1, 60.0), tag(2, 30.0), tag(3, 10.0)];
        let (slots, dur) = build_superframe(&tags, 1024, 1e-3);
        for w in slots.windows(2) {
            assert!(w[0].start + w[0].duration <= w[1].start + 1e-12);
        }
        let last = slots.last().unwrap();
        assert!(last.start + last.duration <= dur);
    }

    #[test]
    fn slower_tags_get_longer_slots() {
        let tags = vec![tag(1, 60.0), tag(2, 5.0)];
        let (slots, _) = build_superframe(&tags, 1024, 0.0);
        assert!(slots[1].duration > slots[0].duration * 4.0);
    }

    #[test]
    fn single_fast_tag_throughput() {
        let tags = vec![tag(1, 60.0)];
        let tp = mean_throughput(&tags, 32_000, 0.0);
        assert!((tp - 32_000.0).abs() < 1.0, "throughput {tp}");
    }

    #[test]
    fn mixed_network_bounded_by_slowest() {
        // One slow tag inflates everyone's super-frame.
        let fast_only = mean_throughput(&[tag(1, 60.0), tag(2, 60.0)], 8_000, 0.0);
        let with_slow = mean_throughput(&[tag(1, 60.0), tag(2, -10.0)], 8_000, 0.0);
        assert!(with_slow < fast_only / 4.0);
    }

    #[test]
    fn empty_network_zero() {
        assert_eq!(mean_throughput(&[], 100, 0.0), 0.0);
    }
}
