//! Tag discovery: framed slotted ALOHA, RFID-style (§4.4).
//!
//! The reader opens inventory rounds of `w` response slots; each undiscovered
//! tag answers in a uniformly random slot. Slots with exactly one responder
//! yield a discovery (the reader acknowledges the tag ID); collision slots
//! yield nothing. The window doubles when collisions dominate and halves
//! when most slots are empty — the Q-algorithm's behaviour in powers of two.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Result of running discovery to completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryOutcome {
    /// Tag IDs in the order discovered.
    pub order: Vec<u32>,
    /// Inventory rounds used.
    pub rounds: usize,
    /// Total response slots consumed (the airtime cost).
    pub slots_used: usize,
}

/// Run framed slotted ALOHA until every tag in `tag_ids` is discovered or
/// `max_rounds` elapses.
pub fn discover(
    tag_ids: &[u32],
    initial_window: usize,
    max_rounds: usize,
    seed: u64,
) -> DiscoveryOutcome {
    assert!(initial_window >= 1, "discover: window must be >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending: Vec<u32> = tag_ids.to_vec();
    let mut out = DiscoveryOutcome {
        order: Vec::with_capacity(tag_ids.len()),
        rounds: 0,
        slots_used: 0,
    };
    let mut w = initial_window;
    while !pending.is_empty() && out.rounds < max_rounds {
        out.rounds += 1;
        out.slots_used += w;
        // Each pending tag picks a slot.
        let mut slot_of: Vec<(usize, u32)> = pending
            .iter()
            .map(|&id| (rng.gen_range(0..w), id))
            .collect();
        slot_of.sort_by_key(|&(s, _)| s);
        // Singleton slots are discoveries.
        let mut discovered = Vec::new();
        let mut i = 0;
        while i < slot_of.len() {
            let mut j = i + 1;
            while j < slot_of.len() && slot_of[j].0 == slot_of[i].0 {
                j += 1;
            }
            if j - i == 1 {
                discovered.push(slot_of[i].1);
            }
            i = j;
        }
        pending.retain(|id| !discovered.contains(id));
        out.order.extend(discovered);
        // Window adaptation: aim for w ≈ pending count.
        if !pending.is_empty() {
            if pending.len() > w {
                w = (w * 2).min(1024);
            } else if pending.len() * 4 < w && w > 1 {
                w /= 2;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_all_tags() {
        let ids: Vec<u32> = (0..50).collect();
        let out = discover(&ids, 8, 1000, 1);
        let mut sorted = out.order.clone();
        sorted.sort();
        assert_eq!(sorted, ids, "missing tags after {} rounds", out.rounds);
    }

    #[test]
    fn single_tag_is_quick() {
        let out = discover(&[42], 4, 100, 2);
        assert_eq!(out.order, vec![42]);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn empty_set_trivial() {
        let out = discover(&[], 8, 100, 3);
        assert!(out.order.is_empty());
        assert_eq!(out.rounds, 0);
        assert_eq!(out.slots_used, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let ids: Vec<u32> = (0..20).collect();
        assert_eq!(discover(&ids, 8, 100, 7), discover(&ids, 8, 100, 7));
    }

    #[test]
    fn airtime_scales_roughly_linearly() {
        // Slotted ALOHA with adaptation: slots ≈ e·n; check it stays within
        // a generous linear envelope rather than quadratic blowup.
        let slots_20 = discover(&(0..20).collect::<Vec<_>>(), 8, 1000, 5).slots_used;
        let slots_100 = discover(&(0..100).collect::<Vec<_>>(), 8, 1000, 5).slots_used;
        assert!(
            slots_100 < slots_20 * 12,
            "airtime blew up: {slots_20} → {slots_100}"
        );
    }

    #[test]
    fn window_one_still_terminates() {
        let ids: Vec<u32> = (0..5).collect();
        let out = discover(&ids, 1, 10_000, 11);
        let mut sorted = out.order.clone();
        sorted.sort();
        assert_eq!(sorted, ids);
    }
}
