//! # retroturbo-mac
//!
//! The thin master–slave MAC of §4.4: SNR-driven rate/coding adaptation,
//! scramble/CRC/Reed–Solomon frame protection with stop-and-wait ARQ,
//! framed-slotted-ALOHA tag discovery, and TDMA super-frame scheduling with
//! throughput accounting (the machinery behind the Fig. 18c network
//! experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod discovery;
pub mod rate_table;
pub mod tdma;

pub use arq::{
    protect, protected_bits, recover, recover_with_quality, stop_and_wait, ArqStats, AttemptInfo,
    BitPipe, RecoverReport,
};
pub use discovery::{discover, DiscoveryOutcome};
pub use rate_table::{CodingChoice, RateOption, RateTable};
pub use tdma::{
    apportion_frames, build_superframe, build_weighted_superframe, mean_throughput, ScheduledSlot,
    TagAssignment,
};
