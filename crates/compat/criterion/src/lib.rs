//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BatchSize`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Unlike upstream it has no plotting or
//! statistical machinery: each benchmark is warmed up, then timed over
//! `sample_size` samples of adaptively-chosen iteration counts, and the
//! median ns/iter is printed. Set `CRITERION_JSON` to a path to also append
//! one JSON object per benchmark (`{"id", "ns_per_iter", "throughput"}`) —
//! the hook `retroturbo-bench` uses to emit `BENCH_kernels.json`.

#![forbid(unsafe_code)]

use std::io::Write;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (ignored by this subset).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per sample.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Benchmark name filter: first non-flag CLI argument (cargo bench
        // passes harness flags like `--bench`; ignore them).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            measurement: Duration::from_millis(500),
            warm_up: Duration::from_millis(100),
            filter,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Final configuration hook (upstream parses CLI args here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(self, &id, None, f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(self.c, &id, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; routines register through it.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] with a by-ref routine.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }

    // Warm-up: find an iteration count whose sample lands near the
    // per-sample time budget.
    let mut iters = 1u64;
    let warm_deadline = Instant::now() + c.warm_up;
    let mut one = run_once(&mut f, iters);
    while Instant::now() < warm_deadline && one < Duration::from_millis(10) {
        iters = iters.saturating_mul(2);
        one = run_once(&mut f, iters);
    }
    let per_iter = one.as_nanos().max(1) / iters as u128;
    let per_sample = (c.measurement.as_nanos() / c.sample_size as u128).max(1);
    let iters = ((per_sample / per_iter.max(1)).clamp(1, u64::MAX as u128)) as u64;

    let mut samples: Vec<f64> = (0..c.sample_size)
        .map(|_| run_once(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let thr = throughput.map(|t| match t {
        Throughput::Elements(n) => (n as f64 * 1e9 / median, "elem/s"),
        Throughput::Bytes(n) => (n as f64 * 1e9 / median, "B/s"),
    });
    match thr {
        Some((rate, unit)) => println!(
            "{id:<44} {:>12} ns/iter (range {:.0}..{:.0})  {:.3e} {unit}",
            format!("{median:.1}"),
            lo,
            hi,
            rate
        ),
        None => println!(
            "{id:<44} {:>12} ns/iter (range {:.0}..{:.0})",
            format!("{median:.1}"),
            lo,
            hi
        ),
    }

    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let thr_json = thr
                .map(|(rate, unit)| format!(",\"throughput\":{rate:.3},\"unit\":\"{unit}\""))
                .unwrap_or_default();
            let _ = writeln!(
                file,
                "{{\"id\":\"{id}\",\"ns_per_iter\":{median:.3},\"ns_min\":{lo:.3},\"ns_max\":{hi:.3}{thr_json}}}"
            );
        }
    }
}

/// Group benchmark functions (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config.configure_from_args();
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Produce `main` running the given groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        // Must simply not panic and run the closure.
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        assert!(ran);
    }

    #[test]
    fn group_with_throughput_and_batched() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
