//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! small slice of the `rand` 0.8 API this repository actually uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_bool` and `Rng::gen_range`
//! over primitive types. The generator is xoshiro256** seeded through
//! splitmix64 — high-quality, fast, and fully deterministic per seed, which
//! is all the simulator requires (DESIGN.md §7). Streams differ numerically
//! from upstream `rand`'s ChaCha-based `StdRng`; every test in this
//! repository asserts qualitative/statistical properties, not exact draws.

#![forbid(unsafe_code)]

/// Seedable generators (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    /// A small fast generator; alias of [`StdRng`] in this subset.
    pub type SmallRng = StdRng;
}

use rngs::StdRng;

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let s = [
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
            splitmix64(&mut x),
        ];
        Self { s }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types producible by [`Rng::gen`] (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}
impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl Standard for u128 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for i128 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        u128::draw(rng) as i128
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free mapping (Lemire); bias is
                // < 2^-64 per draw, far below anything observable here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "gen_range: empty range");
                if a == <$t>::MIN && b == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (b - a) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                a + hi as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i64).wrapping_add(hi as i64) as $t
            }
        }
    )*};
}
impl_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}
impl SampleRange for core::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing generator trait (mirrors `rand::Rng`).
pub trait Rng {
    /// Draw a value of any [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Draw uniformly from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_balanced() {
        let mut r = StdRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4600..5400).contains(&trues), "{trues}");
    }
}
