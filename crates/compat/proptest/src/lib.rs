//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! subset of the proptest API its property tests use: the `proptest!` macro,
//! range/`any`/tuple/`prop_map` strategies, `collection::{vec, hash_set}`,
//! and the `prop_assert*`/`prop_assume!` macros. Inputs are generated from a
//! deterministic per-test RNG (seeded from the test body's position in the
//! source), every test runs `ProptestConfig::cases` cases, and there is no
//! shrinking: a failing case panics with the ordinary assertion message.
//! `proptest-regressions` files are ignored.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::hash::Hash;

/// Deterministic generator handed to strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seed a generator; each test gets `seed_from(test-id, case)`.
    pub fn new(seed: u64) -> Self {
        Self {
            x: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retry until `f` accepts the value (up to a bounded number of tries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// A constant strategy (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges and `any`
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty strategy range");
                let span = (b as i128 - a as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (a as i128 + off) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Marker for [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _t: core::marker::PhantomData<T>,
}

/// The full-type-range strategy (mirrors `proptest::arbitrary::any`).
pub fn any<T>() -> Any<T> {
    Any {
        _t: core::marker::PhantomData,
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, sign-balanced, wide dynamic range.
        let m = rng.unit_f64() * 2.0 - 1.0;
        let e = (rng.below(41) as i32) - 20;
        m * 10f64.powi(e)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Size specifications accepted by [`collection::vec`] /
/// [`collection::hash_set`].
pub trait SizeRange {
    /// Draw a concrete size.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}
impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below(self.end - self.start)
    }
}
impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Vec of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// HashSet of values from `element`; the drawn size is a target — fewer
    /// elements result if duplicates keep appearing (mirrors proptest).
    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut tries = 0usize;
            while out.len() < n && tries < 100 * (n + 1) {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Suppress an unused-import warning for the re-exported names above.
#[doc(hidden)]
pub type __HashSet<T> = HashSet<T>;
#[doc(hidden)]
pub fn __hash<T: Hash>(_: &T) {}

// ---------------------------------------------------------------------------
// Runner configuration + macros
// ---------------------------------------------------------------------------

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Everything a property test needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skip the current case unless `cond` holds. Rejected cases count toward
/// the case budget in this subset (proptest re-draws; the difference is
/// immaterial for the loose statistical properties tested here).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }` becomes
/// a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Per-test deterministic seed: the test name's bytes.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in stringify!($name).bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01B3);
            }
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // One closure per case so `prop_assume!` can skip via return.
                #[allow(unused_mut, unused_variables)]
                let mut body = |rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::Strategy::generate(&$strat, rng);)*
                    $body
                };
                body(&mut rng);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_sizes(v in collection::vec(any::<u8>(), 4..9)) {
            prop_assert!((4..9).contains(&v.len()));
        }

        #[test]
        fn hash_set_capped(s in collection::hash_set(0usize..8, 0..=8)) {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.iter().all(|&x| x < 8));
        }

        #[test]
        fn map_applies(z in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&z));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n > 2);
            prop_assert!(n > 2);
        }
    }
}
