//! Warehouse inventory network: discovery, rate adaptation and TDMA at scale.
//!
//! The Fig. 18c scenario as an application: dozens of tagged assets spread
//! through a reader's 50° field of view. The reader (1) inventories the
//! population with framed-slotted-ALOHA discovery, (2) assigns each tag the
//! fastest reliable operating point from its uplink SNR, and (3) schedules a
//! TDMA super-frame. Compare aggregate throughput against the fixed
//! lowest-common-rate baseline.
//!
//! Run with: `cargo run --release --example warehouse_network`

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use retroturbo::mac::{build_superframe, discover, mean_throughput, RateTable, TagAssignment};
use retroturbo::sim::LinkBudget;

fn main() {
    let n_tags = 40usize;
    let budget = LinkBudget::fov50();
    let table = RateTable::profiled_default();
    let mut rng = StdRng::seed_from_u64(2026);

    // Assets placed between 1 m and 4.3 m (65 → 14 dB, §7.3).
    let ids: Vec<u32> = (0..n_tags as u32).collect();
    let distances: Vec<f64> = ids.iter().map(|_| rng.gen_range(1.0..4.3)).collect();

    // --- Phase 1: discovery. ---
    let outcome = discover(&ids, 8, 1000, 7);
    println!(
        "discovered {}/{} tags in {} rounds ({} response slots)",
        outcome.order.len(),
        n_tags,
        outcome.rounds,
        outcome.slots_used
    );

    // --- Phase 2: per-tag rate assignment from measured SNR. ---
    let tags: Vec<TagAssignment> = outcome
        .order
        .iter()
        .map(|&id| {
            let snr = budget.snr_db(distances[id as usize]);
            TagAssignment {
                id,
                snr_db: snr,
                rate: table.select(snr, 1.0), // 1 dB fade margin
            }
        })
        .collect();
    let mut by_rate: std::collections::BTreeMap<&str, usize> = Default::default();
    for t in &tags {
        *by_rate.entry(t.rate.name).or_default() += 1;
    }
    println!("rate assignment: {by_rate:?}");

    // --- Phase 3: TDMA super-frame for one 128-byte report per tag. ---
    let payload_bits = 128 * 8;
    let (slots, duration) = build_superframe(&tags, payload_bits, 1e-3);
    println!(
        "super-frame: {} slots over {:.1} ms (longest slot {:.1} ms)",
        slots.len(),
        duration * 1e3,
        slots.iter().map(|s| s.duration).fold(0.0f64, f64::max) * 1e3
    );

    // --- Compare against the fixed-rate baseline. ---
    let worst_snr = tags.iter().map(|t| t.snr_db).fold(f64::INFINITY, f64::min);
    let common = table.select(worst_snr, 1.0);
    let baseline: Vec<TagAssignment> = tags
        .iter()
        .map(|t| TagAssignment {
            rate: common,
            ..t.clone()
        })
        .collect();
    let tp_adapt = mean_throughput(&tags, payload_bits, 1e-3);
    let tp_base = mean_throughput(&baseline, payload_bits, 1e-3);
    println!(
        "mean per-tag throughput: adaptive {:.2} kbit/s vs fixed '{}' {:.2} kbit/s  ({:.2}x gain)",
        tp_adapt / 1e3,
        common.name,
        tp_base / 1e3,
        tp_adapt / tp_base
    );
    assert!(tp_adapt >= tp_base, "adaptation should never lose");
}
