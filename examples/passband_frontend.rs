//! Full 455 kHz-class passband reception with heavy ambient light.
//!
//! Everything the reader's analog/digital front end does, end-to-end: per-
//! channel intensity → switching carrier → photodiode (+ 20× ambient with
//! mains flicker) → band-pass → quadrature down-conversion → decimation →
//! the standard RetroTurbo receiver. The decode is clean because ambient
//! light lives at DC/flicker frequencies, far outside the carrier band —
//! the mechanism behind the paper's flat Fig. 16d.
//!
//! Run with: `cargo run --release --example passband_frontend`

use retroturbo::dsp::carrier::PassbandConfig;
use retroturbo::dsp::Signal;
use retroturbo::lcm::LcParams;
use retroturbo::phy::{Modulator, PhyConfig, Receiver, TagModel};
use retroturbo::sim::{AmbientInjection, Frontend};

fn main() {
    let cfg = PhyConfig {
        l_order: 4,
        pqam_order: 16,
        t_slot: 0.5e-3,
        fs: 40_000.0,
        v_memory: 3,
        k_branches: 8,
        preamble_slots: 12,
        training_rounds: 4,
    };
    // A reduced-rate passband keeping the prototype's structure (carrier ≫
    // modulation bandwidth, integer decimation to the PHY's baseband rate).
    let pb = PassbandConfig {
        carrier_hz: 120_000.0,
        fs: 960_000.0,
        decimation: 24,
        bandwidth_hz: 40_000.0,
        square_carrier: true,
    };
    let fe = Frontend::new(pb);
    println!(
        "passband: {:.0} kHz square carrier at {:.2} MHz ADC, decimate {}x -> {:.0} kHz baseband",
        pb.carrier_hz / 1e3,
        pb.fs / 1e6,
        pb.decimation,
        fe.baseband_rate() / 1e3
    );

    let payload = b"through the carrier";
    let bits = retroturbo::coding::bytes_to_bits(payload);
    let model = TagModel::nominal(&cfg, &LcParams::default());
    let frame = Modulator::new(cfg).modulate(&bits);
    let baseband = Signal::new(model.render_levels(&frame.levels), cfg.fs);

    let ambient = AmbientInjection::bright();
    println!(
        "ambient injected at the photodiode: DC {}x signal + {}x flicker at {} Hz",
        ambient.dc, ambient.flicker, ambient.flicker_hz
    );
    let recovered = fe.through(&baseband, ambient, 0.0, 7);

    let mut receiver = Receiver::new(cfg, &LcParams::default(), 2);
    *receiver.detection_threshold_mut() = 0.95;
    let out = receiver
        .receive_window(&recovered, 0, 3 * cfg.samples_per_slot(), bits.len())
        .expect("frame lost in the front end");
    let errs = out.bits.iter().zip(&bits).filter(|(a, b)| a != b).count();
    println!(
        "bit errors through the full passband path: {errs}/{}",
        bits.len()
    );
    println!(
        "payload: {}",
        String::from_utf8_lossy(&retroturbo::coding::bits_to_bytes(&out.bits)[..payload.len()])
    );
    assert_eq!(errs, 0);
}
