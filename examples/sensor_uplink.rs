//! Sensor telemetry uplink: reliable delivery over a marginal link.
//!
//! The motivating IoT workload: a battery-free temperature/humidity sensor
//! tag pushes periodic readings to the room's light infrastructure. The
//! link sits near the 8 kbps demodulation threshold, so raw packets lose the
//! occasional CRC — the MAC wraps them in Reed–Solomon coding and
//! stop-and-wait retransmission (§4.4, Fig. 18b) and delivers every reading.
//!
//! Run with: `cargo run --release --example sensor_uplink`

use retroturbo::mac::{protected_bits, stop_and_wait, CodingChoice};
use retroturbo::phy::PhyConfig;
use retroturbo::sim::EmulatedLink;

/// A fake sensor reading, packed big-endian.
fn reading(seq: u16, temp_milli_c: i32, rh_milli: u32) -> Vec<u8> {
    let mut p = Vec::with_capacity(12);
    p.extend(seq.to_be_bytes());
    p.extend(temp_milli_c.to_be_bytes());
    p.extend(rh_milli.to_be_bytes());
    p.extend([0u8; 2]); // reserved
    p
}

fn main() {
    // A marginal 8 kbps link: 28.5 dB is right at the 1%-BER threshold.
    let cfg = PhyConfig::default_8kbps();
    let snr_db = 28.5;
    let mut link = EmulatedLink::new(cfg, snr_db, 99);
    let coding = Some(CodingChoice { n: 64, k: 32 }); // shortened RS, t = 16
    println!(
        "sensor uplink at {} kbit/s, SNR {snr_db} dB, RS(64,32) + stop-and-wait",
        cfg.data_rate() / 1e3
    );

    let mut delivered = 0usize;
    let mut total_attempts = 0usize;
    let mut airtime = 0.0f64;
    let n_readings = 24;
    for seq in 0..n_readings {
        let payload = reading(
            seq as u16,
            21_300 + 17 * seq as i32,
            44_000 + 250 * seq as u32,
        );
        let stats = stop_and_wait(&mut link, &payload, coding, 0x5B, 6);
        let frame_air = link.frame_airtime(protected_bits(payload.len(), coding));
        airtime += stats.attempts as f64 * frame_air;
        total_attempts += stats.attempts;
        if stats.delivered {
            delivered += 1;
        }
        println!(
            "reading {seq:2}: {} after {} attempt(s)",
            if stats.delivered { "delivered" } else { "LOST" },
            stats.attempts
        );
    }

    println!("---");
    println!(
        "{delivered}/{n_readings} readings delivered, {:.2} attempts/reading, {:.1} readings/s effective",
        total_attempts as f64 / n_readings as f64,
        delivered as f64 / airtime
    );
    assert_eq!(delivered, n_readings, "ARQ should deliver everything");
}
