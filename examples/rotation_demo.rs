//! PQAM rotation tolerance demo: spin the tag, keep the bits.
//!
//! The PDM strawman loses its channels under polarization misalignment; PQAM
//! only sees a constellation rotation of 2Δθ, which the preamble fit removes
//! (§4.2, Fig. 8). This demo sweeps the tag's roll through 180° and decodes
//! the same packet at every angle, printing the recovered constellation
//! rotation versus ground truth.
//!
//! Run with: `cargo run --release --example rotation_demo`

use retroturbo::dsp::{Signal, C64};
use retroturbo::lcm::{Heterogeneity, LcParams, Panel};
use retroturbo::optics::{channel_coefficient, PolAngle};
use retroturbo::phy::{Modulator, PhyConfig, Receiver};

fn main() {
    let mut cfg = PhyConfig::default_8kbps();
    cfg.l_order = 4; // lighter panel, same physics
    cfg.preamble_slots = 16;
    cfg.training_rounds = 4;

    let bits: Vec<bool> = (0..96).map(|i| (i * 31) % 5 < 2).collect();
    let modulator = Modulator::new(cfg);
    let frame = modulator.modulate(&bits);
    let receiver = Receiver::new(cfg, &LcParams::default(), 2);

    println!("roll_deg  pdm_coeff  recovered_rot_deg  bit_errors");
    for roll_deg in (0..=180).step_by(15) {
        let roll = (roll_deg as f64).to_radians();

        // What a fixed-analyzer PDM receiver would keep of its channel:
        let pdm = channel_coefficient(PolAngle::from_radians(roll), PolAngle::from_degrees(0.0));

        // The physical PQAM link at this roll.
        let mut panel = Panel::retroturbo(
            cfg.l_order,
            cfg.bits_per_module(),
            LcParams::default(),
            Heterogeneity::none(),
            1,
        );
        let wave = panel.simulate(
            &frame.drive_commands(&cfg),
            frame.total_slots() * cfg.samples_per_slot(),
            cfg.fs,
        );
        let rot = C64::cis(2.0 * roll);
        let sig = Signal::new(wave.samples().iter().map(|&z| rot * z).collect(), cfg.fs);

        let out = receiver
            .receive_at(&sig, 0, bits.len())
            .expect("decode failed");
        let errors = out.bits.iter().zip(&bits).filter(|(a, b)| a != b).count();

        println!("{roll_deg:8}  {pdm:+9.3}  (2x{roll_deg} deg applied)   {errors}");
        assert_eq!(errors, 0, "PQAM must be rotation-free at {roll_deg} deg");
    }
    println!("\nPQAM decodes error-free at every roll; a PDM channel coefficient");
    println!("crosses zero at 45 deg — that receiver goes blind where PQAM is unaffected.");
}
