//! Quickstart: one DSM×PQAM packet through the full physical simulation.
//!
//! Builds the paper's default 8 kbps PHY (8-DSM, 16-PQAM, T = 0.5 ms),
//! drives a heterogeneous LCM panel with a 32-byte payload, distorts the
//! light through a rolled, noisy indoor channel, and runs the complete
//! receive pipeline: preamble detection + rotation correction, per-packet
//! channel training, and the 16-branch decision-feedback equalizer.
//!
//! Run with: `cargo run --release --example quickstart`

use retroturbo::dsp::noise::{sigma_for_snr, NoiseSource};
use retroturbo::dsp::{Signal, C64};
use retroturbo::lcm::{Heterogeneity, LcParams, Panel};
use retroturbo::phy::{Modulator, PhyConfig, Receiver};

fn main() {
    // --- Configuration: the paper's default 8 kbps operating point. ---
    let cfg = PhyConfig::default_8kbps();
    println!(
        "PHY: {}-DSM x {}-PQAM, T = {} ms  =>  {} kbit/s",
        cfg.l_order,
        cfg.pqam_order,
        cfg.t_slot * 1e3,
        cfg.data_rate() / 1e3
    );

    // --- Tag side: modulate a payload and drive the physical panel. ---
    let payload = b"RetroTurbo says hi over backscattered light!";
    let bits: Vec<bool> = retroturbo::coding::bytes_to_bits(payload);
    let modulator = Modulator::new(cfg);
    let frame = modulator.modulate(&bits);
    println!(
        "frame: {} preamble + {} training + {} payload slots ({:.0} ms airtime)",
        frame.preamble_slots,
        frame.training_slots,
        frame.payload_slots,
        frame.total_slots() as f64 * cfg.t_slot * 1e3
    );

    let mut panel = Panel::retroturbo(
        cfg.l_order,
        cfg.bits_per_module(),
        LcParams::default(),
        Heterogeneity::typical(), // manufacturing spread the trainer must absorb
        42,
    );
    let wave = panel.simulate(
        &frame.drive_commands(&cfg),
        frame.total_slots() * cfg.samples_per_slot(),
        cfg.fs,
    );

    // --- Channel: 25° roll (50° constellation rotation), 32 dB SNR. ---
    let roll_deg = 25.0f64;
    let snr_db = 32.0;
    let rot = C64::cis(2.0 * roll_deg.to_radians());
    let pad = 350usize;
    let mut samples = vec![rot * C64::new(-1.0, -1.0); pad];
    samples.extend(wave.samples().iter().map(|&z| rot * z));
    let mut sig = Signal::new(samples, cfg.fs);
    let mut noise = NoiseSource::new(7);
    noise.add_awgn(sig.samples_mut(), sigma_for_snr(snr_db, 1.0));
    println!("channel: roll {roll_deg} deg, SNR {snr_db} dB");

    // --- Reader side: detect, correct, train, equalize. ---
    let receiver = Receiver::new(cfg, &LcParams::default(), 3);
    let result = receiver
        .receive(&sig, bits.len())
        .expect("no preamble found");
    println!(
        "detected frame at sample {} (score {:.4})",
        result.offset, result.preamble_residual
    );

    let recovered = retroturbo::coding::bits_to_bytes(&result.bits);
    let errors = result
        .bits
        .iter()
        .zip(&bits)
        .filter(|(a, b)| a != b)
        .count();
    println!("bit errors: {errors} / {}", bits.len());
    println!(
        "payload: {}",
        String::from_utf8_lossy(&recovered[..payload.len()])
    );
    assert_eq!(errors, 0, "expected a clean decode at 32 dB");
}
