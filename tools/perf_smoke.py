#!/usr/bin/env python3
"""Warn-only perf smoke report over BENCH_kernels.json.

Prints a table of every kernel row (ns/iter, ns/symbol, threads, speedup)
and flags optimized/reference pairs whose speedup fell below an advisory
floor. Shared CI runners are far too noisy for a hard perf gate, so this
script NEVER fails on timing: correctness gating is the bench binary's own
checksum-divergence exit (it returns nonzero before this script runs if any
optimized kernel's output diverges from its reference pair).

Exit status: 0 always, except when the JSON file is missing or malformed
(which means the bench step itself broke).

Usage: tools/perf_smoke.py [BENCH_kernels.json]
"""

import json
import sys

# Advisory floors for the tracked reference/optimized pairs (PR acceptance
# targets with generous headroom for runner noise). Purely informational.
ADVISORY_FLOORS = {
    "dfe_equalize_k16_gram": 2.0,
    "preamble_search_gram": 2.0,
    "online_training_precomputed": 4.0,
}


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-smoke: cannot read {path}: {e}", file=sys.stderr)
        return 1

    header = f"{'kernel':<36} {'ns/iter':>14} {'ns/symbol':>12} {'thr':>4} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    warnings = []
    for r in rows:
        ns_sym = r.get("ns_per_symbol")
        ns_sym_s = f"{ns_sym:>12.1f}" if isinstance(ns_sym, (int, float)) else f"{'-':>12}"
        print(
            f"{r['kernel']:<36} {r['ns_per_iter']:>14.1f} {ns_sym_s} "
            f"{r.get('threads', 1):>4} {r.get('speedup', 1.0):>8.3f}"
        )
        floor = ADVISORY_FLOORS.get(r["kernel"])
        if floor is not None and r.get("speedup", 0.0) < floor:
            warnings.append(
                f"perf-smoke: WARNING: {r['kernel']} speedup "
                f"{r.get('speedup', 0.0):.2f}x below advisory floor {floor:.1f}x "
                f"(warn-only; runner noise is expected)"
            )
    print()
    for w in warnings:
        print(w)
    if not warnings:
        print("perf-smoke: all tracked pairs at or above advisory floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
