#!/usr/bin/env python3
"""Warn-only perf smoke report over the committed BENCH_*.json files.

Prints a table of every kernel row (ns/iter, ns/symbol, ns/point, threads,
speedup) and flags optimized/reference pairs whose speedup fell below an
advisory floor. If a sweep benchmark file is present (second argument, or
`BENCH_sweeps.json` next to the kernels file), its per-sweep mode table is
printed too, with its own advisory floors; likewise a service benchmark
file (third argument, or `BENCH_service.json` next to the kernels file)
gets a throughput/latency table with packets-per-second floors and p99
latency ceilings, and a fleet benchmark file (fourth argument, or
`BENCH_fleet.json`) a goodput/fairness table with session-throughput and
delivery-rate floors. Shared CI runners are far too noisy for a hard perf
gate, so this script NEVER fails on timing: correctness gating is the
bench binaries' own divergence exit (they return nonzero before this
script runs if any optimized path's output diverges from its reference,
if the streaming service's frames diverge from ground truth, or if the
fleet aggregate diverges across thread counts).

Exit status: 0 always, except when the kernels JSON file is missing or
malformed (which means the bench step itself broke). Missing sweeps,
service, or fleet files are skipped silently; malformed ones warn.

Usage: tools/perf_smoke.py [BENCH_kernels.json] [BENCH_sweeps.json] [BENCH_service.json] [BENCH_fleet.json]
"""

import json
import os
import sys

# Advisory floors for the tracked reference/optimized pairs (PR acceptance
# targets with generous headroom for runner noise). Purely informational.
ADVISORY_FLOORS = {
    "dfe_equalize_k16_gram": 2.0,
    "preamble_search_gram": 2.0,
    "online_training_precomputed": 4.0,
    "waveform_renoise_cached": 10.0,
    # SIMD-tier rows: speedup is vs the interleaved scalar run of the same
    # kernel. Floors are deliberately loose — AVX2 gains vary with the
    # runner's vector units, and rows are skipped entirely on hosts
    # without SIMD support.
    "dfe_equalize_k16_simd": 1.05,
    "online_training_simd": 1.1,
    "panel_ode_simd": 1.5,
    "gram_fit_simd": 1.2,
    "filter_chain_simd": 1.2,
    "decimate_boxcar_simd": 1.1,
    "run_packet_simd": 1.2,
}

# Advisory floors for (sweep, mode) rows of BENCH_sweeps.json: speedup is
# measured against the sweep's baseline mode (the scalar oracle for field
# sweeps, the no-cache fused driver for emulated sweeps).
SWEEP_ADVISORY_FLOORS = {
    ("fig16a_quick", "engine_cached"): 3.0,
    ("fig16a_full", "engine_cached"): 3.0,
}

# Advisory bounds for BENCH_service.json saturation rows, keyed by worker
# count: (packets_per_sec floor, p99 latency ceiling in ms). Local release
# runs sustain ~550-670 pps with p99 under 5 ms, so these carry an order
# of magnitude of headroom for shared-runner noise and debug-adjacent CI
# hosts. The overload row is reported but never floored — its throughput
# is intentionally starved.
SERVICE_ADVISORY_BOUNDS = {
    1: (50.0, 100.0),
    2: (50.0, 100.0),
    8: (50.0, 100.0),
}

# Advisory bounds for BENCH_fleet.json rows, keyed by fleet size:
# (sessions_per_sec floor, delivery_rate floor). Local release runs
# sustain 2000-8000 sessions/s with ~98 % delivery, so the throughput
# floors carry an order of magnitude of headroom for shared-runner noise;
# the delivery floor is a scenario-health check (the default fleet should
# never lose half its traffic), not a perf number.
FLEET_ADVISORY_BOUNDS = {
    2: (200.0, 0.8),
    4: (100.0, 0.8),
    8: (50.0, 0.8),
}


def print_meta(meta):
    """Render the provenance block shared by both bench JSON files."""
    feats = meta.get("cpu_features", {})
    on = [name for name, v in sorted(feats.items()) if v]
    print(
        f"meta: default_backend={meta.get('default_backend', '?')} "
        f"simd_available={meta.get('simd_available', '?')} "
        f"cpu_features=[{', '.join(on) or 'none'}] "
        f"quick={meta.get('quick', '?')}"
    )


def report_kernels(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf-smoke: cannot read {path}: {e}", file=sys.stderr)
        return 1, []

    # New shape: {"meta": {...}, "kernels": [...]}; legacy shape: bare list.
    if isinstance(data, dict):
        print_meta(data.get("meta", {}))
        rows = data.get("kernels", [])
    else:
        rows = data

    header = (
        f"{'kernel':<36} {'backend':<8} {'ns/iter':>14} {'ns/symbol':>12} "
        f"{'ns/point':>14} {'thr':>4} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    warnings = []
    for r in rows:
        ns_sym = r.get("ns_per_symbol")
        ns_sym_s = f"{ns_sym:>12.1f}" if isinstance(ns_sym, (int, float)) else f"{'-':>12}"
        ns_pt = r.get("ns_per_point")
        ns_pt_s = f"{ns_pt:>14.1f}" if isinstance(ns_pt, (int, float)) else f"{'-':>14}"
        print(
            f"{r['kernel']:<36} {r.get('backend', 'scalar'):<8} "
            f"{r['ns_per_iter']:>14.1f} {ns_sym_s} {ns_pt_s} "
            f"{r.get('threads', 1):>4} {r.get('speedup', 1.0):>8.3f}"
        )
        floor = ADVISORY_FLOORS.get(r["kernel"])
        if floor is not None and r.get("speedup", 0.0) < floor:
            warnings.append(
                f"perf-smoke: WARNING: {r['kernel']} speedup "
                f"{r.get('speedup', 0.0):.2f}x below advisory floor {floor:.1f}x "
                f"(warn-only; runner noise is expected)"
            )
    return 0, warnings


def report_sweeps(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError:
        return []  # no sweep benchmarks in this run
    except ValueError as e:
        return [f"perf-smoke: WARNING: cannot parse {path}: {e}"]

    print()
    if isinstance(data, dict):
        print_meta(data.get("meta", {}))
        rows = data.get("sweeps", [])
    else:
        rows = data
    header = (
        f"{'sweep':<16} {'mode':<16} {'thr':>4} {'points':>7} "
        f"{'ms_total':>10} {'ns/point':>14} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    warnings = []
    for r in rows:
        print(
            f"{r.get('sweep', '?'):<16} {r.get('mode', '?'):<16} "
            f"{r.get('threads', 1):>4} {r.get('points', 0):>7} "
            f"{r.get('ms_total', 0.0):>10.1f} {r.get('ns_per_point', 0.0):>14.0f} "
            f"{r.get('speedup', 1.0):>8.3f}"
        )
        floor = SWEEP_ADVISORY_FLOORS.get((r.get("sweep"), r.get("mode")))
        if floor is not None and r.get("speedup", 0.0) < floor:
            warnings.append(
                f"perf-smoke: WARNING: {r.get('sweep')}/{r.get('mode')} speedup "
                f"{r.get('speedup', 0.0):.2f}x below advisory floor {floor:.1f}x "
                f"(warn-only; runner noise is expected)"
            )
    return warnings


def report_service(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError:
        return []  # no service benchmark in this run
    except ValueError as e:
        return [f"perf-smoke: WARNING: cannot parse {path}: {e}"]

    print()
    print_meta(data.get("meta", {}) if isinstance(data, dict) else {})
    rows = data.get("service", []) if isinstance(data, dict) else data
    header = (
        f"{'scenario':<12} {'wrk':>4} {'in':>5} {'dec':>5} {'deg':>5} "
        f"{'drop':>5} {'pkts/s':>9} {'p50_ms':>8} {'p99_ms':>8} {'lost':>9} {'equiv':>6}"
    )
    print(header)
    print("-" * len(header))
    warnings = []
    for r in rows:
        print(
            f"{r.get('scenario', '?'):<12} {r.get('workers', 0):>4} "
            f"{r.get('frames_in', 0):>5} {r.get('frames_decoded', 0):>5} "
            f"{r.get('frames_degraded', 0):>5} {r.get('frames_dropped', 0):>5} "
            f"{r.get('packets_per_sec', 0.0):>9.1f} {r.get('p50_ms', 0.0):>8.3f} "
            f"{r.get('p99_ms', 0.0):>8.3f} {r.get('samples_lost', 0):>9} "
            f"{str(r.get('equivalent', '?')):>6}"
        )
        if r.get("scenario") != "saturation":
            continue
        bounds = SERVICE_ADVISORY_BOUNDS.get(r.get("workers"))
        if bounds is None:
            continue
        pps_floor, p99_ceiling = bounds
        if r.get("packets_per_sec", 0.0) < pps_floor:
            warnings.append(
                f"perf-smoke: WARNING: service saturation@{r.get('workers')} "
                f"{r.get('packets_per_sec', 0.0):.1f} pkts/s below advisory "
                f"floor {pps_floor:.0f} (warn-only; runner noise is expected)"
            )
        if r.get("p99_ms", 0.0) > p99_ceiling:
            warnings.append(
                f"perf-smoke: WARNING: service saturation@{r.get('workers')} "
                f"p99 {r.get('p99_ms', 0.0):.1f} ms above advisory ceiling "
                f"{p99_ceiling:.0f} ms (warn-only; runner noise is expected)"
            )
    return warnings


def report_fleet(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError:
        return []  # no fleet benchmark in this run
    except ValueError as e:
        return [f"perf-smoke: WARNING: cannot parse {path}: {e}"]

    print()
    print_meta(data.get("meta", {}) if isinstance(data, dict) else {})
    rows = data.get("fleet", []) if isinstance(data, dict) else data
    header = (
        f"{'tags':>4} {'sessions':>8} {'sess/s':>9} {'gp_p50':>9} {'gp_p90':>9} "
        f"{'gp_p99':>9} {'fair_p10':>8} {'fair_p50':>8} {'lat_p99':>8} "
        f"{'deliv':>6} {'att':>5} {'equiv':>6}"
    )
    print(header)
    print("-" * len(header))
    warnings = []
    for r in rows:
        print(
            f"{r.get('tags', 0):>4} {r.get('sessions', 0):>8} "
            f"{r.get('sessions_per_sec', 0.0):>9.1f} "
            f"{r.get('sum_goodput_p50_bps', 0.0):>9.1f} "
            f"{r.get('sum_goodput_p90_bps', 0.0):>9.1f} "
            f"{r.get('sum_goodput_p99_bps', 0.0):>9.1f} "
            f"{r.get('fairness_p10', 0.0):>8.4f} {r.get('fairness_p50', 0.0):>8.4f} "
            f"{r.get('latency_p99_s', 0.0):>8.4f} {r.get('delivery_rate', 0.0):>6.4f} "
            f"{r.get('mean_attempts', 0.0):>5.2f} {str(r.get('equivalent', '?')):>6}"
        )
        bounds = FLEET_ADVISORY_BOUNDS.get(r.get("tags"))
        if bounds is None:
            continue
        sps_floor, delivery_floor = bounds
        if r.get("sessions_per_sec", 0.0) < sps_floor:
            warnings.append(
                f"perf-smoke: WARNING: fleet@{r.get('tags')} "
                f"{r.get('sessions_per_sec', 0.0):.1f} sessions/s below advisory "
                f"floor {sps_floor:.0f} (warn-only; runner noise is expected)"
            )
        if r.get("delivery_rate", 0.0) < delivery_floor:
            warnings.append(
                f"perf-smoke: WARNING: fleet@{r.get('tags')} delivery rate "
                f"{r.get('delivery_rate', 0.0):.3f} below advisory floor "
                f"{delivery_floor:.2f} (warn-only; scenario health check)"
            )
    return warnings


def main() -> int:
    kernels_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernels.json"
    bench_dir = os.path.dirname(kernels_path) or "."
    sweeps_path = (
        sys.argv[2] if len(sys.argv) > 2 else os.path.join(bench_dir, "BENCH_sweeps.json")
    )
    service_path = (
        sys.argv[3] if len(sys.argv) > 3 else os.path.join(bench_dir, "BENCH_service.json")
    )
    fleet_path = (
        sys.argv[4] if len(sys.argv) > 4 else os.path.join(bench_dir, "BENCH_fleet.json")
    )
    status, warnings = report_kernels(kernels_path)
    if status != 0:
        return status
    warnings += report_sweeps(sweeps_path)
    warnings += report_service(service_path)
    warnings += report_fleet(fleet_path)
    print()
    for w in warnings:
        print(w)
    if not warnings:
        print("perf-smoke: all tracked pairs at or above advisory floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
