//! `retroturbo` — command-line driver for ad-hoc link studies.
//!
//! ```text
//! retroturbo info
//! retroturbo link    --distance 5 [--rate 8k] [--roll 30] [--yaw 20] [--packets 10] [--bytes 32] [--seed 1]
//! retroturbo emulate --snr 30 [--rate 8k] [--packets 10] [--bytes 32] [--seed 1]
//! retroturbo range   [--rate 8k]
//! ```

use retroturbo::phy::PhyConfig;
use retroturbo::sim::{EmulatedLink, LinkBudget, LinkSimulator, Scene};
use std::collections::HashMap;
use std::process::ExitCode;

fn parse_rate(s: &str) -> Option<PhyConfig> {
    match s {
        "1k" | "1kbps" => Some(PhyConfig::default_1kbps()),
        "4k" | "4kbps" => Some(PhyConfig::default_4kbps()),
        "8k" | "8kbps" => Some(PhyConfig::default_8kbps()),
        "16k" | "16kbps" => Some(PhyConfig::default_16kbps()),
        "32k" | "32kbps" => Some(PhyConfig::emulation_32kbps()),
        _ => None,
    }
}

/// Our own measured 1 %-BER thresholds (EXPERIMENTS.md, Fig. 18a sweep).
fn threshold_db(rate: &str) -> f64 {
    match rate {
        "1k" | "1kbps" => -1.6,
        "4k" | "4kbps" => 15.7,
        "8k" | "8kbps" => 23.4,
        "16k" | "16kbps" => 37.9,
        _ => 48.3,
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let k = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", args[i]))?;
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("--{k} needs a value"))?;
        map.insert(k.to_string(), v.clone());
        i += 2;
    }
    Ok(map)
}

fn get_f64(m: &HashMap<String, String>, k: &str, default: f64) -> Result<f64, String> {
    match m.get(k) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{k}: bad number '{v}'")),
    }
}

fn get_usize(m: &HashMap<String, String>, k: &str, default: usize) -> Result<usize, String> {
    match m.get(k) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{k}: bad integer '{v}'")),
    }
}

fn usage() {
    eprintln!("usage:");
    eprintln!("  retroturbo info");
    eprintln!("  retroturbo link    --distance <m> [--rate 8k] [--roll <deg>] [--yaw <deg>] [--packets <n>] [--bytes <n>] [--seed <s>]");
    eprintln!(
        "  retroturbo emulate --snr <dB> [--rate 8k] [--packets <n>] [--bytes <n>] [--seed <s>]"
    );
    eprintln!("  retroturbo range   [--rate 8k]");
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        return Err("no command".into());
    };
    let flags = parse_flags(&args[1..])?;
    let rate_name = flags.get("rate").cloned().unwrap_or_else(|| "8k".into());
    let cfg = parse_rate(&rate_name).ok_or_else(|| format!("unknown rate '{rate_name}'"))?;

    match cmd.as_str() {
        "info" => {
            println!("preset\tL\tP\tT_ms\trate_kbps\tthreshold_dB(1% BER, measured)");
            for name in ["1k", "4k", "8k", "16k", "32k"] {
                let c = parse_rate(name).unwrap();
                println!(
                    "{name}\t{}\t{}\t{}\t{}\t{}",
                    c.l_order,
                    c.pqam_order,
                    c.t_slot * 1e3,
                    c.data_rate() / 1e3,
                    threshold_db(name)
                );
            }
            Ok(())
        }
        "link" => {
            let d = get_f64(&flags, "distance", f64::NAN)?;
            if d.is_nan() {
                return Err("link: --distance is required".into());
            }
            let scene = Scene::default_at(d)
                .with_roll(get_f64(&flags, "roll", 0.0)?)
                .with_yaw(get_f64(&flags, "yaw", 0.0)?);
            let seed = get_usize(&flags, "seed", 1)? as u64;
            let mut sim = LinkSimulator::new(cfg, LinkBudget::fov10(), scene, seed);
            eprintln!(
                "running {} packets of {} bytes at {d} m ({} kbit/s)…",
                get_usize(&flags, "packets", 10)?,
                get_usize(&flags, "bytes", 32)?,
                cfg.data_rate() / 1e3
            );
            let snr = sim.effective_snr_db();
            let ber = sim.run_ber(
                get_usize(&flags, "packets", 10)?,
                get_usize(&flags, "bytes", 32)?,
            );
            println!("snr_dB\t{snr:.1}");
            println!("ber\t{ber:.6}");
            println!("reliable\t{}", ber < 0.01);
            Ok(())
        }
        "emulate" => {
            let snr = get_f64(&flags, "snr", f64::NAN)?;
            if snr.is_nan() {
                return Err("emulate: --snr is required".into());
            }
            let seed = get_usize(&flags, "seed", 1)? as u64;
            let mut link = EmulatedLink::new(cfg, snr, seed);
            let ber = link.run_ber(
                get_usize(&flags, "packets", 10)?,
                get_usize(&flags, "bytes", 32)?,
                seed ^ 0xE11,
            );
            println!("ber\t{ber:.6}");
            println!("reliable\t{}", ber < 0.01);
            Ok(())
        }
        "range" => {
            let b = LinkBudget::fov10();
            let th = threshold_db(&rate_name);
            println!(
                "{} needs {th} dB -> working range ≈ {:.1} m (FoV ±10°, 4 W)",
                rate_name,
                b.range_for_snr(th)
            );
            Ok(())
        }
        other => {
            usage();
            Err(format!("unknown command '{other}'"))
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
