//! # RetroTurbo
//!
//! A full-system Rust reproduction of **"Turboboosting Visible Light
//! Backscatter Communication"** (SIGCOMM 2020): the DSM + PQAM physical
//! layer, its demodulation pipeline, and every substrate it runs on —
//! liquid-crystal modulator physics, polarization optics, DSP front end,
//! Reed–Solomon coding, and a rate-adaptive MAC — plus an end-to-end
//! simulator and a benchmark harness regenerating every table and figure of
//! the paper's evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! paths. Start with [`phy`] (the paper's contribution) and [`sim`] (the
//! end-to-end experiments); DESIGN.md maps every subsystem and experiment.
//!
//! ```
//! use retroturbo::phy::{Modulator, PhyConfig, Receiver, TagModel};
//! use retroturbo::lcm::LcParams;
//! use retroturbo::dsp::Signal;
//!
//! // A small DSM×PQAM link over an ideal channel.
//! let mut cfg = PhyConfig::default_8kbps();
//! cfg.l_order = 4; cfg.preamble_slots = 12; cfg.training_rounds = 4;
//! let bits: Vec<bool> = (0..40).map(|i| i % 3 == 0).collect();
//! let frame = Modulator::new(cfg).modulate(&bits);
//! let wave = TagModel::nominal(&cfg, &LcParams::default()).render_levels(&frame.levels);
//! let rx = Receiver::new(cfg, &LcParams::default(), 2);
//! assert_eq!(rx.receive(&Signal::new(wave, cfg.fs), bits.len()).unwrap().bits, bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Channel coding: GF(256), Reed–Solomon, CRC, scrambler, Gray code,
/// interleaver.
pub use retroturbo_coding as coding;
/// The core PHY: DSM + PQAM modulation, preamble correction, channel
/// training, the K-branch DFE, performance-index analysis.
pub use retroturbo_core as phy;
/// DSP substrate: complex signals, filters, noise, linear algebra, the
/// 455 kHz passband chain.
pub use retroturbo_dsp as dsp;
/// Liquid-crystal modulator model: nonlinear dynamics, pixel banks, panel,
/// fingerprint emulator.
pub use retroturbo_lcm as lcm;
/// MAC: rate adaptation, ARQ, discovery, TDMA.
pub use retroturbo_mac as mac;
/// Polarization optics: Malus's law, the doubled-angle constellation space,
/// retroreflector geometry.
pub use retroturbo_optics as optics;
/// Streaming decode service: staged pipeline from a sample ring to
/// recovered frames, with bounded queues, a persistent worker pool, and
/// overload degradation (see DESIGN.md §14).
pub use retroturbo_service as service;
/// End-to-end simulation and the per-figure experiment drivers.
pub use retroturbo_sim as sim;
